// Package platform models the target computing system: a set of (possibly
// heterogeneous) processors connected by a network with per-link startup
// latency and transfer rate. Processors are fully connected, the standard
// assumption of the static-scheduling literature; communication between
// two tasks placed on the same processor is free.
package platform

import (
	"errors"
	"fmt"
	"math"
)

// Processor is one processing element. Speed is relative to a reference
// processor of speed 1.0: a task of nominal weight w takes w/Speed time
// under the "consistent" (related-machines) cost model.
type Processor struct {
	ID    int
	Name  string
	Speed float64
}

// System is an immutable description of the target machine.
type System struct {
	procs   []Processor
	startup [][]float64 // startup[p][q]: per-message latency, 0 on diagonal
	invRate [][]float64 // invRate[p][q]: time per data unit, 0 on diagonal
}

// Config collects the options accepted by New.
type Config struct {
	// Speeds gives the relative speed of each processor; its length sets
	// the processor count. Every entry must be positive.
	Speeds []float64
	// Latency is the per-message startup cost applied to every distinct
	// processor pair (default 0).
	Latency float64
	// TimePerUnit is the transfer time of one data unit between every
	// distinct pair (default 1). A value of 0 models infinitely fast links
	// with only startup cost.
	TimePerUnit float64
	// StartupMatrix and InvRateMatrix, when non-nil, override Latency and
	// TimePerUnit with full per-pair matrices (diagonals are forced to 0).
	StartupMatrix [][]float64
	InvRateMatrix [][]float64
}

// New validates cfg and builds a System.
func New(cfg Config) (*System, error) {
	p := len(cfg.Speeds)
	if p == 0 {
		return nil, errors.New("platform: at least one processor required")
	}
	for i, s := range cfg.Speeds {
		if s <= 0 {
			return nil, fmt.Errorf("platform: processor %d has non-positive speed %g", i, s)
		}
	}
	if cfg.Latency < 0 {
		return nil, fmt.Errorf("platform: negative latency %g", cfg.Latency)
	}
	if cfg.TimePerUnit < 0 {
		return nil, fmt.Errorf("platform: negative time-per-unit %g", cfg.TimePerUnit)
	}
	sys := &System{procs: make([]Processor, p)}
	for i := range sys.procs {
		sys.procs[i] = Processor{ID: i, Name: fmt.Sprintf("P%d", i), Speed: cfg.Speeds[i]}
	}
	var err error
	sys.startup, err = fullMatrix(p, cfg.Latency, cfg.StartupMatrix, "startup")
	if err != nil {
		return nil, err
	}
	sys.invRate, err = fullMatrix(p, cfg.TimePerUnit, cfg.InvRateMatrix, "inverse-rate")
	if err != nil {
		return nil, err
	}
	// Individually valid entries can still overflow the unit-message cost
	// (startup + inverse rate); a system whose links cost +Inf poisons
	// every downstream computation and cannot be re-serialized.
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if c := sys.startup[i][j] + sys.invRate[i][j]; math.IsInf(c, 1) || math.IsNaN(c) {
				return nil, fmt.Errorf("platform: link (%d,%d) unit cost overflows: startup %g + inverse rate %g", i, j, sys.startup[i][j], sys.invRate[i][j])
			}
		}
	}
	return sys, nil
}

func fullMatrix(p int, uniform float64, override [][]float64, what string) ([][]float64, error) {
	m := make([][]float64, p)
	for i := range m {
		m[i] = make([]float64, p)
		for j := range m[i] {
			if i != j {
				m[i][j] = uniform
			}
		}
	}
	if override == nil {
		return m, nil
	}
	if len(override) != p {
		return nil, fmt.Errorf("platform: %s matrix has %d rows, want %d", what, len(override), p)
	}
	for i, row := range override {
		if len(row) != p {
			return nil, fmt.Errorf("platform: %s matrix row %d has %d cols, want %d", what, i, len(row), p)
		}
		for j, v := range row {
			switch {
			case i == j:
				m[i][j] = 0
			case v < 0:
				return nil, fmt.Errorf("platform: %s[%d][%d] negative: %g", what, i, j, v)
			default:
				m[i][j] = v
			}
		}
	}
	return m, nil
}

// MustNew is New that panics on error, for generators and tests.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Homogeneous returns a system of p identical unit-speed processors with
// the given per-message latency and per-unit transfer time on every link.
func Homogeneous(p int, latency, timePerUnit float64) *System {
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = 1
	}
	return MustNew(Config{Speeds: speeds, Latency: latency, TimePerUnit: timePerUnit})
}

// Len returns the number of processors.
func (s *System) Len() int { return len(s.procs) }

// Proc returns processor p.
func (s *System) Proc(p int) Processor { return s.procs[p] }

// Procs returns a copy of the processor list.
func (s *System) Procs() []Processor {
	out := make([]Processor, len(s.procs))
	copy(out, s.procs)
	return out
}

// Speed returns the relative speed of processor p.
func (s *System) Speed(p int) float64 { return s.procs[p].Speed }

// Startup returns the per-message startup latency of link p→q (0 on the
// diagonal).
func (s *System) Startup(p, q int) float64 { return s.startup[p][q] }

// InvRate returns the per-data-unit transfer time of link p→q (0 on the
// diagonal).
func (s *System) InvRate(p, q int) float64 { return s.invRate[p][q] }

// CommCost returns the time to transfer data units from processor p to q:
// zero when p == q, otherwise startup + data * invRate.
func (s *System) CommCost(p, q int, data float64) float64 {
	if p == q {
		return 0
	}
	return s.startup[p][q] + data*s.invRate[p][q]
}

// MeanCommCost returns the average over all ordered distinct pairs of the
// cost of transferring data units — the c̄ used by rank computations.
// With a single processor it returns 0.
func (s *System) MeanCommCost(data float64) float64 {
	p := len(s.procs)
	if p < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i != j {
				sum += s.startup[i][j] + data*s.invRate[i][j]
			}
		}
	}
	return sum / float64(p*(p-1))
}

// IsHomogeneous reports whether all processors share one speed.
func (s *System) IsHomogeneous() bool {
	for _, p := range s.procs[1:] {
		if p.Speed != s.procs[0].Speed {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (s *System) String() string {
	kind := "heterogeneous"
	if s.IsHomogeneous() {
		kind = "homogeneous"
	}
	return fmt.Sprintf("system(%d %s processors)", len(s.procs), kind)
}
