package service_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dagsched/internal/algo"
	"dagsched/internal/service"
	"dagsched/internal/testfix"
	"dagsched/internal/workload"
)

// TestBatchOrderAndPartialFailure posts a batch mixing valid items, an
// unknown algorithm and a malformed instance: the envelope answers 200,
// results come back in request order, valid items succeed and broken
// ones carry their own 400 without poisoning siblings.
func TestBatchOrderAndPartialFailure(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 2, QueueDepth: 32})
	inst := instanceJSON(t, testfix.Topcuoglu())

	breq := service.BatchRequest{Items: []service.ScheduleRequest{
		{Algorithm: "HEFT", Instance: inst},
		{Algorithm: "no-such-algorithm", Instance: inst},
		{Algorithm: "CPOP", Instance: inst, Analyze: true},
		{Algorithm: "HEFT", Instance: []byte(`{"broken":true}`)},
		{Algorithm: "HEFT", Instance: inst}, // identical to item 0: cache or coalesce
	}}
	resp, err := c.ScheduleBatch(context.Background(), breq)
	if err != nil {
		t.Fatalf("ScheduleBatch: %v", err)
	}
	if len(resp.Items) != len(breq.Items) {
		t.Fatalf("got %d results for %d items", len(resp.Items), len(breq.Items))
	}
	for i, it := range resp.Items {
		if it.Index != i {
			t.Errorf("result %d carries index %d; order must be preserved", i, it.Index)
		}
	}
	wantStatus := []int{200, 400, 200, 400, 200}
	for i, want := range wantStatus {
		if resp.Items[i].Status != want {
			t.Errorf("item %d: status %d (error %q), want %d", i, resp.Items[i].Status, resp.Items[i].Error, want)
		}
	}
	if resp.Succeeded != 3 || resp.Failed != 2 {
		t.Errorf("succeeded/failed = %d/%d, want 3/2", resp.Succeeded, resp.Failed)
	}
	if !strings.Contains(resp.Items[1].Error, "no-such-algorithm") {
		t.Errorf("item 1 error %q does not name the unknown algorithm", resp.Items[1].Error)
	}
	if resp.Items[0].Response == nil || resp.Items[0].Response.Makespan <= 0 {
		t.Errorf("item 0 has no usable schedule: %+v", resp.Items[0].Response)
	}
	if resp.Items[2].Response.Analysis == nil {
		t.Errorf("item 2 requested analyze but got none")
	}
	if r := resp.Items[4].Response; r == nil || r.Makespan != resp.Items[0].Response.Makespan {
		t.Errorf("identical items 0 and 4 disagree: %+v vs %+v", resp.Items[0].Response, r)
	}
}

// TestBatchFansOutAcrossWorkers pins the perf property of the batch
// endpoint: independent items run concurrently on the pool, so 4 slow
// items on 4 workers take ~1 delay, not 4.
func TestBatchFansOutAcrossWorkers(t *testing.T) {
	slow := &slowAlg{name: "slow", delay: 200 * time.Millisecond}
	_, c := startServer(t, service.Options{
		Workers:    4,
		QueueDepth: 16,
		Resolver:   func(string) (algo.Algorithm, error) { return slow, nil },
	})
	inst := instanceJSON(t, testfix.Topcuoglu())
	var items []service.ScheduleRequest
	for i := 0; i < 4; i++ {
		// Distinct algorithm names make distinct cache keys, so nothing
		// coalesces and every item really runs.
		items = append(items, service.ScheduleRequest{Algorithm: fmt.Sprintf("slow-%d", i), Instance: inst})
	}
	start := time.Now()
	resp, err := c.ScheduleBatch(context.Background(), service.BatchRequest{Items: items})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("ScheduleBatch: %v", err)
	}
	if resp.Failed != 0 {
		t.Fatalf("failed items: %+v", resp.Items)
	}
	if n := slow.starts.Load(); n != 4 {
		t.Errorf("ran %d schedules, want 4 distinct", n)
	}
	if limit := 3 * slow.delay; elapsed >= limit {
		t.Errorf("4 items on 4 workers took %s, want < %s (sequential would be %s)", elapsed, limit, 4*slow.delay)
	}
}

// TestBatchValidation covers the envelope-level 400s and the size cap.
func TestBatchValidation(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 1, MaxBatchItems: 4})
	inst := instanceJSON(t, testfix.Topcuoglu())

	if _, err := c.ScheduleBatch(context.Background(), service.BatchRequest{}); err == nil ||
		!strings.Contains(err.Error(), "empty batch") {
		t.Errorf("empty batch: want 400 empty-batch error, got %v", err)
	}
	var items []service.ScheduleRequest
	for i := 0; i < 5; i++ {
		items = append(items, service.ScheduleRequest{Algorithm: "HEFT", Instance: inst})
	}
	if _, err := c.ScheduleBatch(context.Background(), service.BatchRequest{Items: items}); err == nil ||
		!strings.Contains(err.Error(), "limit") {
		t.Errorf("oversized batch: want 400 limit error, got %v", err)
	}
}

// TestBatchMetrics asserts the /metrics surface the batch endpoint
// feeds: request/item counters and the size histogram.
func TestBatchMetrics(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 2})
	inst := instanceJSON(t, testfix.Topcuoglu())
	for _, size := range []int{1, 3} {
		var items []service.ScheduleRequest
		for i := 0; i < size; i++ {
			items = append(items, service.ScheduleRequest{Algorithm: "HEFT", Instance: inst, Analyze: i%2 == 0})
		}
		if _, err := c.ScheduleBatch(context.Background(), service.BatchRequest{Items: items}); err != nil {
			t.Fatalf("batch of %d: %v", size, err)
		}
	}
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if snap.Batch.Count != 2 || snap.Batch.Items != 4 {
		t.Errorf("batch count/items = %d/%d, want 2/4", snap.Batch.Count, snap.Batch.Items)
	}
	if len(snap.Batch.SizeHistogram.Buckets) == 0 {
		t.Fatalf("batch size histogram missing")
	}
	last := snap.Batch.SizeHistogram.Buckets[len(snap.Batch.SizeHistogram.Buckets)-1]
	if last.Count != 2 {
		t.Errorf("size histogram cumulative tail = %d, want 2", last.Count)
	}
	for i := 1; i < len(snap.Batch.SizeHistogram.Buckets); i++ {
		if snap.Batch.SizeHistogram.Buckets[i].Count < snap.Batch.SizeHistogram.Buckets[i-1].Count {
			t.Errorf("size histogram not cumulative at bucket %d: %+v", i, snap.Batch.SizeHistogram.Buckets)
		}
	}
}

// BenchmarkBatchEndpoint measures batch round-trip throughput over real
// HTTP: one 64-item batch of distinct instances per iteration.
func BenchmarkBatchEndpoint(b *testing.B) {
	opts := service.Options{Workers: 0, QueueDepth: 256, CacheSize: -1, Addr: "127.0.0.1:0"}
	s := service.New(opts)
	addr, err := s.Start()
	if err != nil {
		b.Fatalf("Start: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	c := &service.Client{BaseURL: "http://" + addr}

	const items = 64
	rng := rand.New(rand.NewSource(1))
	var breq service.BatchRequest
	for i := 0; i < items; i++ {
		g, err := workload.Random(workload.RandomConfig{N: 40}, rng)
		if err != nil {
			b.Fatalf("Random: %v", err)
		}
		in, err := workload.MakeInstance(g, workload.HetConfig{Procs: 3, CCR: 1, Beta: 0.5}, rng)
		if err != nil {
			b.Fatalf("MakeInstance: %v", err)
		}
		var sb strings.Builder
		if err := in.WriteJSON(&sb); err != nil {
			b.Fatalf("WriteJSON: %v", err)
		}
		breq.Items = append(breq.Items, service.ScheduleRequest{Algorithm: "HEFT", Instance: []byte(sb.String())})
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.ScheduleBatch(context.Background(), breq)
		if err != nil {
			b.Fatalf("ScheduleBatch: %v", err)
		}
		if resp.Failed != 0 {
			b.Fatalf("%d items failed", resp.Failed)
		}
	}
	b.ReportMetric(float64(b.N*items)/b.Elapsed().Seconds(), "items/s")
}
