package dagsched_test

// End-to-end smoke tests of the four CLI tools, exercising the same
// binaries a user would run. They shell out to `go run`, so they are
// skipped under -short.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runTool executes `go run ./cmd/<tool> args...` in the repo root.
func runTool(t *testing.T, tool string, args ...string) (stdout, stderr string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + tool}, args...)...)
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", tool, args, err, errb.String())
	}
	return out.String(), errb.String()
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests compile binaries")
	}
	dir := t.TempDir()
	graph := filepath.Join(dir, "g.json")
	dot := filepath.Join(dir, "g.dot")

	// schedgen: generate a Gaussian-elimination DAG with DOT and stats.
	_, errOut := runTool(t, "schedgen", "-type", "gauss", "-m", "6", "-o", graph, "-dot", dot, "-stats")
	if !strings.Contains(errOut, "generated gauss-m6") {
		t.Fatalf("schedgen stderr: %s", errOut)
	}
	if !strings.Contains(errOut, "parallelism=") {
		t.Fatalf("schedgen -stats missing: %s", errOut)
	}
	if data, err := os.ReadFile(dot); err != nil || !strings.Contains(string(data), "digraph") {
		t.Fatalf("DOT output broken: %v", err)
	}

	// schedrun: schedule it, saving every artifact.
	svg := filepath.Join(dir, "s.svg")
	js := filepath.Join(dir, "s.json")
	trace := filepath.Join(dir, "s.trace")
	inst := filepath.Join(dir, "inst.json")
	out, _ := runTool(t, "schedrun",
		"-graph", graph, "-algo", "ILS", "-procs", "3",
		"-svg", svg, "-json", js, "-trace", trace, "-save-instance", inst,
		"-noise", "0.2", "-contention", "-analyze", "-fail-proc", "0", "-fail-at", "0.5")
	for _, want := range []string{"ILS", "SLR", "replay", "analysis:", "fail-stop of P0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("schedrun output missing %q:\n%s", want, out)
		}
	}
	for _, f := range []string{svg, js, trace, inst} {
		if fi, err := os.Stat(f); err != nil || fi.Size() == 0 {
			t.Fatalf("artifact %s missing", f)
		}
	}

	// schedrun from the saved instance reproduces the identical makespan.
	out2, _ := runTool(t, "schedrun", "-instance", inst, "-algo", "ILS", "-gantt=false")
	line := func(s string) string {
		for _, l := range strings.Split(s, "\n") {
			if strings.HasPrefix(l, "ILS") {
				return strings.Fields(l)[1] // makespan column
			}
		}
		return ""
	}
	if line(out) == "" || line(out) != line(out2) {
		t.Fatalf("instance replay differs: %q vs %q", line(out), line(out2))
	}

	// schedrun -list names every algorithm.
	names, _ := runTool(t, "schedrun", "-list")
	for _, want := range []string{"ILS", "HEFT", "GA", "C-HEFT"} {
		if !strings.Contains(names, want) {
			t.Fatalf("-list missing %s:\n%s", want, names)
		}
	}

	// schedviz: PNG + SVG rendering.
	png := filepath.Join(dir, "v.png")
	runTool(t, "schedviz", "-graph", graph, "-png", png, "-procs", "3")
	if data, err := os.ReadFile(png); err != nil || len(data) < 8 || string(data[1:4]) != "PNG" {
		t.Fatalf("schedviz PNG broken: %v", err)
	}

	// schedbench: one quick experiment renders a markdown table.
	bench, _ := runTool(t, "schedbench", "-exp", "E1", "-quick", "-reps", "3")
	if !strings.Contains(bench, "### E1") || !strings.Contains(bench, "| n |") {
		t.Fatalf("schedbench output:\n%s", bench)
	}

	// schedgen DAX import round trip.
	dax := filepath.Join(dir, "w.dax")
	daxContent := `<adag name="w"><job id="a" runtime="2"/><job id="b" runtime="3"/>
	  <child ref="b"><parent ref="a"/></child></adag>`
	if err := os.WriteFile(dax, []byte(daxContent), 0o644); err != nil {
		t.Fatal(err)
	}
	daxJSON := filepath.Join(dir, "w.json")
	_, errOut = runTool(t, "schedgen", "-dax", dax, "-o", daxJSON)
	if !strings.Contains(errOut, "generated w: 2 tasks") {
		t.Fatalf("DAX import: %s", errOut)
	}
}
