package experiment

import (
	"math/rand"
	"runtime"
	"sync"
)

// parallelReps evaluates fn for every repetition index on a bounded worker
// pool and returns the per-rep results in index order. Each repetition
// receives its own rand.Rand derived from (seed, rep), so results are
// bit-for-bit identical regardless of the worker count — parallelism
// changes wall-clock time only, never the tables.
func parallelReps[T any](reps, workers int, seed int64, fn func(rep int, rng *rand.Rand) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > reps {
		workers = reps
	}
	results := make([]T, reps)
	errs := make([]error, reps)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := range jobs {
				// A large odd stride decorrelates neighbouring streams.
				rng := rand.New(rand.NewSource(seed + int64(rep)*0x9E3779B1 + 1))
				results[rep], errs[rep] = fn(rep, rng)
			}
		}()
	}
	for rep := 0; rep < reps; rep++ {
		jobs <- rep
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
