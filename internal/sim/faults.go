package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
)

// ErrProcRange is wrapped by every error caused by a processor (or link
// endpoint) index outside the platform — a schedule rebuilt from external
// placements, or a fault spec naming a processor the platform does not
// have. errors.Is(err, ErrProcRange) identifies the whole class.
var ErrProcRange = errors.New("processor index out of range")

// Crash takes a processor down at time At. Until == 0 means the crash is
// permanent (fail-stop); Until > At means the processor recovers at Until
// (transient outage). Work in flight when the crash strikes is destroyed:
// on a transient crash the copy restarts from scratch at Until, on a
// permanent one it — and everything scheduled after it on that processor
// — is stranded.
type Crash struct {
	Proc  int     `json:"proc"`
	At    float64 `json:"at"`
	Until float64 `json:"until,omitempty"`
}

// LinkFault degrades communication on matching links during [At, Until)
// (Until == 0 means forever). From/To select the link; -1 is a wildcard
// matching every source or destination. Outage defers any transfer that
// would start inside the window to its end; otherwise Factor (≥ 1)
// multiplies the duration of transfers starting inside the window.
type LinkFault struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	At     float64 `json:"at"`
	Until  float64 `json:"until,omitempty"`
	Outage bool    `json:"outage,omitempty"`
	Factor float64 `json:"factor,omitempty"`
}

// FaultPlan is a deterministic, seedable set of runtime faults injected
// into a replay. The zero plan injects nothing.
type FaultPlan struct {
	Crashes []Crash     `json:"crashes,omitempty"`
	Links   []LinkFault `json:"links,omitempty"`
	// Jitter perturbs every copy's execution time multiplicatively by
	// (1 + Jitter×u), u uniform in [−1, 1), drawn from an rng seeded with
	// Seed — an independent stream from Config.Noise, so a fault plan
	// reproduces bit-identically regardless of the noise settings.
	Jitter float64 `json:"jitter,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
}

// Validate checks the plan's internal consistency. procs > 0 additionally
// range-checks every processor index against the platform; procs <= 0
// skips the range check (used when decoding a plan before an instance is
// known).
func (fp *FaultPlan) Validate(procs int) error {
	if fp == nil {
		return nil
	}
	if fp.Jitter < 0 || fp.Jitter >= 1 || math.IsNaN(fp.Jitter) {
		return fmt.Errorf("sim: fault jitter %g out of [0,1)", fp.Jitter)
	}
	for i, c := range fp.Crashes {
		if c.Proc < 0 || (procs > 0 && c.Proc >= procs) {
			return fmt.Errorf("sim: crash %d names processor %d of a %d-processor platform: %w", i, c.Proc, procs, ErrProcRange)
		}
		if c.At < 0 || math.IsNaN(c.At) || math.IsInf(c.At, 0) {
			return fmt.Errorf("sim: crash %d at invalid time %g", i, c.At)
		}
		if c.Until != 0 && (c.Until <= c.At || math.IsNaN(c.Until) || math.IsInf(c.Until, 0)) {
			return fmt.Errorf("sim: crash %d recovery %g not after crash time %g", i, c.Until, c.At)
		}
	}
	for i, l := range fp.Links {
		for _, end := range [2]int{l.From, l.To} {
			if end < -1 || (procs > 0 && end >= procs) {
				return fmt.Errorf("sim: link fault %d endpoint %d of a %d-processor platform: %w", i, end, procs, ErrProcRange)
			}
		}
		if l.At < 0 || math.IsNaN(l.At) || math.IsInf(l.At, 0) {
			return fmt.Errorf("sim: link fault %d at invalid time %g", i, l.At)
		}
		if l.Until != 0 && (l.Until <= l.At || math.IsNaN(l.Until) || math.IsInf(l.Until, 0)) {
			return fmt.Errorf("sim: link fault %d end %g not after start %g", i, l.Until, l.At)
		}
		if l.Outage {
			if l.Factor != 0 {
				return fmt.Errorf("sim: link fault %d is an outage and has factor %g; pick one", i, l.Factor)
			}
		} else if l.Factor < 1 || math.IsNaN(l.Factor) || math.IsInf(l.Factor, 0) {
			return fmt.Errorf("sim: link fault %d slowdown factor %g < 1", i, l.Factor)
		}
	}
	return nil
}

// ReadFaultPlan decodes the wire form of a fault plan (the JSON tags on
// FaultPlan/Crash/LinkFault), rejecting unknown fields and structurally
// invalid plans. Processor indices are range-checked later, against the
// instance the plan is applied to.
func ReadFaultPlan(r io.Reader) (*FaultPlan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var fp FaultPlan
	if err := dec.Decode(&fp); err != nil {
		return nil, fmt.Errorf("sim: decoding fault plan: %w", err)
	}
	if err := fp.Validate(0); err != nil {
		return nil, err
	}
	return &fp, nil
}

// SampleCrashes draws a random fail-stop plan: every processor crashes
// permanently with probability rate, at a time uniform in [0, horizon).
// At least one processor always survives — when the draw would fell the
// whole platform, the latest crash is dropped (the repair that matters is
// still exercised, and an all-dead platform has no meaningful repair).
// Deterministic per seed.
func SampleCrashes(procs int, rate, horizon float64, seed int64) FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	var cs []Crash
	for p := 0; p < procs; p++ {
		if rng.Float64() < rate {
			cs = append(cs, Crash{Proc: p, At: rng.Float64() * horizon})
		}
	}
	if len(cs) == procs && procs > 0 {
		last := 0
		for i := 1; i < len(cs); i++ {
			if cs[i].At >= cs[last].At {
				last = i
			}
		}
		cs = append(cs[:last], cs[last+1:]...)
	}
	return FaultPlan{Crashes: cs, Seed: seed}
}

// FaultReport summarizes how a faulted replay degraded relative to the
// nominal schedule.
type FaultReport struct {
	// Nominal is the analytic makespan the schedule promised.
	Nominal float64
	// Completed counts tasks whose primary copy actually finished;
	// Stranded lists (ascending) the tasks that could not run because
	// their processor died or their inputs were unreachable.
	Completed int
	Stranded  []int
	// Killed counts copy executions destroyed mid-flight by a crash;
	// Restarts counts the re-executions after transient recoveries
	// (a permanent crash kills without a restart).
	Killed, Restarts int
}

// window is a half-open downtime interval [from, to); to == +Inf for a
// permanent crash.
type window struct{ from, to float64 }

// downWindows collects each processor's downtime windows, sorted by
// start. Overlap is allowed; execution resolution walks them in order.
func (fp *FaultPlan) downWindows(procs int) [][]window {
	downs := make([][]window, procs)
	for _, c := range fp.Crashes {
		to := math.Inf(1)
		if c.Until > 0 {
			to = c.Until
		}
		downs[c.Proc] = append(downs[c.Proc], window{c.At, to})
	}
	for p := range downs {
		sort.Slice(downs[p], func(i, j int) bool { return downs[p][i].from < downs[p][j].from })
	}
	return downs
}

// execute resolves one copy execution of length dur on a processor with
// the given downtime windows, beginning no earlier than t. It returns the
// actual start and finish (finish == +Inf when a permanent window strikes
// first — the copy is stranded), how many executions a crash destroyed
// mid-flight, and the wasted partial-execution time burned before each
// kill. A copy whose start falls inside a transient window simply waits
// for recovery; that is a delay, not a kill.
func execute(downs []window, t, dur float64) (start, finish float64, killed int, wasted float64) {
	const eps = 1e-9
	start = t
	for _, w := range downs {
		if start >= w.to {
			continue // already recovered when we get here
		}
		if start+dur <= w.from+eps {
			break // completes before the window opens
		}
		if start >= w.from {
			start = w.to // was down at start: wait for recovery
			if math.IsInf(start, 1) {
				return start, math.Inf(1), killed, wasted
			}
			continue
		}
		// Started before the window, still running when it opens: killed.
		killed++
		wasted += w.from - start
		if math.IsInf(w.to, 1) {
			return start, math.Inf(1), killed, wasted
		}
		start = w.to // transient: restart from scratch after recovery
	}
	return start, start + dur, killed, wasted
}

// adjustTransfer applies the plan's link faults to a transfer on
// from→to that becomes ready at ready with nominal duration dur: the
// start is deferred past any outage window it falls into, and the
// duration is stretched by the largest slowdown factor of the windows the
// (possibly deferred) start lands in. A never-ending outage returns
// start == +Inf: the data cannot be delivered.
func (fp *FaultPlan) adjustTransfer(from, to int, ready, dur float64) (start, adjDur float64) {
	start, adjDur = ready, dur
	// Each pass either settles or jumps past one outage window, so
	// len(Links)+1 passes always suffice.
	for pass := 0; pass <= len(fp.Links); pass++ {
		moved := false
		factor := 1.0
		for _, l := range fp.Links {
			if (l.From != -1 && l.From != from) || (l.To != -1 && l.To != to) {
				continue
			}
			end := math.Inf(1)
			if l.Until > 0 {
				end = l.Until
			}
			if start < l.At || start >= end {
				continue
			}
			if l.Outage {
				start = end
				moved = true
				break
			}
			if l.Factor > factor {
				factor = l.Factor
			}
		}
		if math.IsInf(start, 1) {
			return start, adjDur
		}
		if !moved {
			return start, dur * factor
		}
	}
	return start, adjDur
}
