package dagsched_test

// One benchmark per experiment of the reproduction suite (see DESIGN.md's
// experiment index and EXPERIMENTS.md for the recorded tables): running
// `go test -bench=.` regenerates every table/figure in quick mode and
// reports the wall time of doing so. Set -benchtime=1x for a single
// regeneration per experiment; the rendered tables of the full suite come
// from cmd/schedbench.

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"dagsched"
)

// runExperiment drives one suite experiment in quick mode.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := dagsched.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(dagsched.ExperimentConfig{Quick: true, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			if err := dagsched.RenderExperimentMarkdown(io.Discard, t); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE1SLRBySize(b *testing.B)           { runExperiment(b, "E1") }
func BenchmarkE2SLRByCCR(b *testing.B)            { runExperiment(b, "E2") }
func BenchmarkE3SpeedupByProcs(b *testing.B)      { runExperiment(b, "E3") }
func BenchmarkE4SLRByHeterogeneity(b *testing.B)  { runExperiment(b, "E4") }
func BenchmarkE5SLRByShape(b *testing.B)          { runExperiment(b, "E5") }
func BenchmarkE6GaussianElimination(b *testing.B) { runExperiment(b, "E6") }
func BenchmarkE7FFT(b *testing.B)                 { runExperiment(b, "E7") }
func BenchmarkE8Laplace(b *testing.B)             { runExperiment(b, "E8") }
func BenchmarkE9WinTieLoss(b *testing.B)          { runExperiment(b, "E9") }
func BenchmarkE10Homogeneous(b *testing.B)        { runExperiment(b, "E10") }
func BenchmarkE11Ablation(b *testing.B)           { runExperiment(b, "E11") }
func BenchmarkE12OptimalityAndRuntime(b *testing.B) {
	runExperiment(b, "E12")
}
func BenchmarkE13Robustness(b *testing.B)     { runExperiment(b, "E13") }
func BenchmarkE14ExtendedLineup(b *testing.B) { runExperiment(b, "E14") }
func BenchmarkE15SearchVsList(b *testing.B)   { runExperiment(b, "E15") }
func BenchmarkE16Contention(b *testing.B)     { runExperiment(b, "E16") }
func BenchmarkE17DupBudget(b *testing.B)      { runExperiment(b, "E17") }
func BenchmarkE18LinkSpread(b *testing.B)     { runExperiment(b, "E18") }
func BenchmarkE19FailStopRepair(b *testing.B) { runExperiment(b, "E19") }
func BenchmarkE20CommModels(b *testing.B)     { runExperiment(b, "E20") }
func BenchmarkE21FaultRobustness(b *testing.B) { runExperiment(b, "E21") }

// benchSizeCap bounds the DAG size each algorithm is benchmarked at in
// BenchmarkAlgorithms (it mirrors scaleSizeCap in cmd/schedbench). The
// insertion-based list schedulers scale to 10k-task DAGs; the
// pair-scanning (ETF, DLS) and clustering/contention algorithms are
// inherently super-quadratic and stop earlier. The duplication family
// evaluates trials through the speculative-transaction layer, so the
// non-duplicating ILS variants reach 10k and the duplicating schedulers
// are benchmarked to 1k. Algorithms not listed default to 10000.
var benchSizeCap = map[string]int{
	"ETF":    1000,
	"DLS":    1000,
	"ILS":    1000,
	"ILS-L":  10000,
	"ILS-D":  1000,
	"ILS-R":  10000,
	"DSH":    1000,
	"BTDH":   1000,
	"DSC":    1000,
	"C-HEFT": 1000,
	"C-ILS":  1000,
}

// BenchmarkAlgorithms times every registry algorithm on layered random
// DAGs at n ∈ {100, 1000, 10000} tasks over 8 processors. This is the
// perf-trajectory benchmark: cmd/schedbench -scale emits the same
// measurements as BENCH_sched.json.
func BenchmarkAlgorithms(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		rng := rand.New(rand.NewSource(int64(n)))
		g, err := dagsched.RandomDAG(dagsched.RandomDAGConfig{N: n}, rng)
		if err != nil {
			b.Fatal(err)
		}
		in, err := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 8, CCR: 1, Beta: 1}, rng)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range dagsched.Algorithms() {
			cap, ok := benchSizeCap[a.Name()]
			if ok && n > cap {
				continue
			}
			a := a
			b.Run(fmt.Sprintf("%s/n%d", a.Name(), n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := a.Schedule(in); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// Micro-benchmarks of the schedulers themselves: time to schedule one
// random 100-task DAG on 8 processors, per algorithm.
func BenchmarkSchedulers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := dagsched.RandomDAG(dagsched.RandomDAGConfig{N: 100}, rng)
	if err != nil {
		b.Fatal(err)
	}
	in, err := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 8, CCR: 1, Beta: 1}, rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, a := range dagsched.Algorithms() {
		a := a
		b.Run(a.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := a.Schedule(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Scaling benchmark: ILS scheduling time by DAG size.
func BenchmarkILSScaling(b *testing.B) {
	for _, n := range []int{50, 100, 200, 400} {
		n := n
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			g, err := dagsched.RandomDAG(dagsched.RandomDAGConfig{N: n}, rng)
			if err != nil {
				b.Fatal(err)
			}
			in, err := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 8, CCR: 1, Beta: 1}, rng)
			if err != nil {
				b.Fatal(err)
			}
			alg := dagsched.ILS()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := alg.Schedule(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Substrate micro-benchmarks.
func BenchmarkRandomDAGGeneration(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dagsched.RandomDAG(dagsched.RandomDAGConfig{N: 200}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateReplay(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	g, _ := dagsched.RandomDAG(dagsched.RandomDAGConfig{N: 200}, rng)
	in, _ := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 8, CCR: 1, Beta: 1}, rng)
	s, err := dagsched.ILS().Schedule(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dagsched.Simulate(s, dagsched.SimConfig{Noise: 0.2, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
