package service

import (
	"encoding/json"
)

// ScheduleRequest is the wire form of one scheduling query. Exactly one
// of Instance or Graph must be set: Instance carries a full problem
// (graph, system, cost matrix) as written by Instance.WriteJSON; Graph
// carries a bare task graph that is scheduled onto a homogeneous system
// described by Processors/Latency/TimePerUnit with consistent costs.
type ScheduleRequest struct {
	// Algorithm is the registry display name, e.g. "HEFT" or "ILS".
	Algorithm string `json:"algorithm"`
	// Instance is a full problem instance (see Instance.WriteJSON).
	Instance json.RawMessage `json:"instance,omitempty"`
	// Graph is a bare task graph (see Graph.WriteJSON).
	Graph json.RawMessage `json:"graph,omitempty"`
	// Processors, Latency and TimePerUnit describe the homogeneous
	// system a bare Graph is scheduled onto. Processors defaults to 8.
	Processors  int     `json:"processors,omitempty"`
	Latency     float64 `json:"latency,omitempty"`
	TimePerUnit float64 `json:"timePerUnit,omitempty"`
	// CommModel selects the communication model the schedulers run
	// under: "" or "contention-free" (the classic matrix costs),
	// "one-port" (transfers serialize on per-processor send/receive
	// ports) or "shared-link" (all processors share one bus). Any
	// registry algorithm becomes contention-aware when a contended
	// model is selected.
	CommModel string `json:"commModel,omitempty"`
	// LinkBandwidth scales the shared-link bus (data units per time
	// unit; default 1). Only valid with CommModel "shared-link"; must
	// be positive and finite.
	LinkBandwidth float64 `json:"linkBandwidth,omitempty"`
	// Analyze adds per-task slack, the critical set and per-processor
	// idle time to the response.
	Analyze bool `json:"analyze,omitempty"`
	// TimeoutMs caps this request's scheduling time. Zero applies the
	// server default; values above the server maximum are clamped.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// ScheduleResponse is the wire form of a scheduling result.
type ScheduleResponse struct {
	Algorithm  string  `json:"algorithm"`
	Makespan   float64 `json:"makespan"`
	SLR        float64 `json:"slr"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	Duplicates int     `json:"duplicates"`
	// CommModel is the communication-model kind the schedule was
	// computed under.
	CommModel string `json:"commModel"`
	// RuntimeMs is the scheduling time of the run that produced this
	// result; a cached response reports the original run's time.
	RuntimeMs float64 `json:"runtimeMs"`
	// Cached marks a response served from the result cache.
	Cached      bool             `json:"cached"`
	Assignments []AssignmentJSON `json:"assignments"`
	Analysis    *AnalysisJSON    `json:"analysis,omitempty"`
}

// AssignmentJSON is one task copy placed on a processor.
type AssignmentJSON struct {
	Task   int     `json:"task"`
	Name   string  `json:"name,omitempty"`
	Proc   int     `json:"proc"`
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"`
	Dup    bool    `json:"dup,omitempty"`
}

// AnalysisJSON mirrors sched.Analysis on the wire.
type AnalysisJSON struct {
	Slack     []float64 `json:"slack"`
	Critical  []int     `json:"critical"`
	IdleTime  []float64 `json:"idleTime"`
	IdleShare []float64 `json:"idleShare"`
}

// errorJSON is the body of every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
}

// MetricsSnapshot is the body of GET /metrics.
type MetricsSnapshot struct {
	UptimeSec float64 `json:"uptimeSec"`
	Requests  struct {
		Total    int64            `json:"total"`
		ByStatus map[string]int64 `json:"byStatus"`
	} `json:"requests"`
	LatencyMs HistogramJSON `json:"latencyMs"`
	Queue     struct {
		Depth    int `json:"depth"`
		Capacity int `json:"capacity"`
		Workers  int `json:"workers"`
	} `json:"queue"`
	Cache struct {
		Hits     int64   `json:"hits"`
		Misses   int64   `json:"misses"`
		HitRate  float64 `json:"hitRate"`
		Size     int     `json:"size"`
		Capacity int     `json:"capacity"`
	} `json:"cache"`
	// Algorithms accumulates makespan and scheduling-runtime summary
	// statistics per algorithm over every uncached successful request.
	Algorithms map[string]AlgorithmStats `json:"algorithms"`
}

// HistogramJSON is a cumulative latency histogram.
type HistogramJSON struct {
	// Buckets[i].Count is the number of observations ≤ Buckets[i].LeMs;
	// the implicit final bucket (+Inf) is Count.
	Buckets []HistogramBucket `json:"buckets"`
	Count   int64             `json:"count"`
	SumMs   float64           `json:"sumMs"`
}

// HistogramBucket is one cumulative bucket boundary.
type HistogramBucket struct {
	LeMs  float64 `json:"leMs"`
	Count int64   `json:"count"`
}

// AlgorithmStats summarizes one algorithm's serving history.
type AlgorithmStats struct {
	Count    int       `json:"count"`
	Makespan StatsJSON `json:"makespan"`
	Runtime  StatsJSON `json:"runtimeMs"`
}

// StatsJSON renders a metrics.Accumulator. Min and Max are pointers
// because Accumulator.Min/Max return 0 on an empty stream — a value a
// real sample could also take — so empty accumulators serialize them as
// null instead of a misleading 0.
type StatsJSON struct {
	N      int      `json:"n"`
	Mean   float64  `json:"mean"`
	StdDev float64  `json:"stdDev"`
	Min    *float64 `json:"min,omitempty"`
	Max    *float64 `json:"max,omitempty"`
}
