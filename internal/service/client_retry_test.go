package service_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dagsched/internal/service"
)

// fastRetry keeps test backoffs in the microsecond range.
func fastRetry() *service.RetryPolicy {
	return &service.RetryPolicy{
		MaxAttempts:      3,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       4 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  150 * time.Millisecond,
	}
}

// TestClientRetries503 exercises the happy retry path: two 503s then a
// 200 must succeed transparently, having hit the server exactly three
// times.
func TestClientRetries503(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"queue full"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"algorithm":"HEFT","makespan":80,"assignments":[]}`))
	}))
	defer ts.Close()
	c := &service.Client{BaseURL: ts.URL, Retry: fastRetry()}
	resp, err := c.Schedule(context.Background(), service.ScheduleRequest{Algorithm: "HEFT"})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if resp.Makespan != 80 {
		t.Fatalf("response %+v", resp)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("server hit %d times, want 3", n)
	}
}

// TestClientDoesNotRetryClientErrors: a 400 means the request itself is
// wrong; retrying it would just repeat the rejection.
func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"missing algorithm name"}`))
	}))
	defer ts.Close()
	c := &service.Client{BaseURL: ts.URL, Retry: fastRetry()}
	_, err := c.Schedule(context.Background(), service.ScheduleRequest{})
	var se *service.StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("got %v, want HTTP 400", err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("400 retried: server hit %d times", n)
	}
}

// TestClientRetryRespectsContext: cancellation during backoff must end
// the retry loop promptly with the last observed error.
func TestClientRetryRespectsContext(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"queue full"}`))
	}))
	defer ts.Close()
	c := &service.Client{BaseURL: ts.URL, Retry: &service.RetryPolicy{
		MaxAttempts: 10, BaseBackoff: time.Hour, MaxBackoff: time.Hour,
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Schedule(ctx, service.ScheduleRequest{Algorithm: "HEFT"})
	if err == nil {
		t.Fatal("succeeded against an always-503 server")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("retry loop ignored context cancellation (took %s)", time.Since(start))
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server hit %d times before the deadline, want 1", n)
	}
}

// TestClientCircuitBreaker: repeated server-side failures for one
// algorithm open its circuit (fail fast, no traffic), other algorithms
// keep flowing, and the cooldown admits a probe that closes the circuit
// once the server recovers.
func TestClientCircuitBreaker(t *testing.T) {
	var hits atomic.Int64
	var healthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if healthy.Load() {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"algorithm":"HEFT","makespan":80,"assignments":[]}`))
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":"scheduler exploded"}`))
	}))
	defer ts.Close()
	pol := fastRetry()
	pol.MaxAttempts = 1 // isolate the breaker from the retry loop
	c := &service.Client{BaseURL: ts.URL, Retry: pol}
	ctx := context.Background()

	for i := 0; i < pol.BreakerThreshold; i++ {
		if _, err := c.Schedule(ctx, service.ScheduleRequest{Algorithm: "HEFT"}); err == nil {
			t.Fatalf("failure %d unexpectedly succeeded", i)
		}
	}
	before := hits.Load()
	_, err := c.Schedule(ctx, service.ScheduleRequest{Algorithm: "HEFT"})
	if !errors.Is(err, service.ErrCircuitOpen) {
		t.Fatalf("got %v, want ErrCircuitOpen", err)
	}
	if hits.Load() != before {
		t.Fatal("open circuit still sent traffic")
	}

	// A different algorithm has its own circuit.
	healthy.Store(true)
	if _, err := c.Schedule(ctx, service.ScheduleRequest{Algorithm: "ILS"}); err != nil {
		t.Fatalf("independent algorithm blocked: %v", err)
	}

	// After the cooldown, one probe goes through and closes the circuit.
	time.Sleep(pol.BreakerCooldown + 20*time.Millisecond)
	if _, err := c.Schedule(ctx, service.ScheduleRequest{Algorithm: "HEFT"}); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if _, err := c.Schedule(ctx, service.ScheduleRequest{Algorithm: "HEFT"}); err != nil {
		t.Fatalf("closed circuit rejected traffic: %v", err)
	}
}
