package dag

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the on-disk representation of a Graph.
type jsonGraph struct {
	Name  string     `json:"name,omitempty"`
	Tasks []jsonTask `json:"tasks"`
	Edges []jsonEdge `json:"edges"`
}

type jsonTask struct {
	ID     TaskID  `json:"id"`
	Name   string  `json:"name,omitempty"`
	Weight float64 `json:"weight"`
}

type jsonEdge struct {
	From TaskID  `json:"from"`
	To   TaskID  `json:"to"`
	Data float64 `json:"data"`
}

// MarshalJSON encodes the graph as {name, tasks, edges}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.name}
	for _, t := range g.tasks {
		jg.Tasks = append(jg.Tasks, jsonTask{ID: t.ID, Name: t.Name, Weight: t.Weight})
	}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, jsonEdge{From: e.From, To: e.To, Data: e.Data})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes and re-validates a graph. Task ids in the input
// must be dense 0..n-1 and listed in id order.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("dag: decoding graph: %w", err)
	}
	b := NewBuilder(jg.Name)
	for i, t := range jg.Tasks {
		if int(t.ID) != i {
			return fmt.Errorf("dag: task ids must be dense and ordered; got id %d at index %d", t.ID, i)
		}
		b.AddTask(t.Name, t.Weight)
	}
	for _, e := range jg.Edges {
		b.AddEdge(e.From, e.To, e.Data)
	}
	built, err := b.Build()
	if err != nil {
		return err
	}
	g.replaceWith(built)
	return nil
}

// WriteJSON writes the graph as indented JSON.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ReadJSON reads a graph produced by WriteJSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	return &g, nil
}
