package sim

import (
	"math"
	"testing"

	"dagsched/internal/algo/listsched"
	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

func TestContentionNeverShortensMakespan(t *testing.T) {
	testfix.Battery(testfix.BatteryConfig{Trials: 20, Seed: 4001}, func(trial int, in *sched.Instance) {
		s, err := listsched.HEFT{}.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		free, err := Run(s, Config{})
		if err != nil {
			t.Fatal(err)
		}
		contended, err := Run(s, Config{Contention: true})
		if err != nil {
			t.Fatal(err)
		}
		if contended.Makespan < free.Makespan-1e-6 {
			t.Fatalf("trial %d: contention shortened the makespan: %g < %g",
				trial, contended.Makespan, free.Makespan)
		}
	})
}

func TestContentionSerializesBroadcast(t *testing.T) {
	// One root broadcasting to 3 children on 3 other processors: in the
	// contention-free model all transfers overlap (arrival = 1 + 10); in
	// the one-port model they serialize on the root's send port
	// (arrivals 11, 21, 31).
	b := dag.NewBuilder("bcast")
	root := b.AddTask("root", 1)
	kids := make([]dag.TaskID, 3)
	for i := range kids {
		kids[i] = b.AddTask("", 1)
		b.AddEdge(root, kids[i], 10)
	}
	g := b.MustBuild()
	// Pin each child to its own processor via the cost matrix.
	w := [][]float64{
		{1, 1000, 1000, 1000},
		{1000, 1, 1000, 1000},
		{1000, 1000, 1, 1000},
		{1000, 1000, 1000, 1},
	}
	in, err := sched.NewInstance(g, platform.Homogeneous(4, 0, 1), w)
	if err != nil {
		t.Fatal(err)
	}
	s, err := listsched.HEFT{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	free, err := Run(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	contended, err := Run(s, Config{Contention: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(free.Makespan-12) > 1e-9 {
		t.Fatalf("contention-free makespan = %g, want 12", free.Makespan)
	}
	if math.Abs(contended.Makespan-32) > 1e-9 {
		t.Fatalf("contended makespan = %g, want 32 (serialized broadcast)", contended.Makespan)
	}
	if contended.Transfers != 3 {
		t.Fatalf("Transfers = %d, want 3", contended.Transfers)
	}
	if math.Abs(contended.SendTime[0]-30) > 1e-9 {
		t.Fatalf("SendTime[0] = %g, want 30", contended.SendTime[0])
	}
}

func TestContentionNoEffectOnLocalSchedules(t *testing.T) {
	// A chain kept on one processor has no transfers: contention changes
	// nothing.
	b := dag.NewBuilder("chain")
	var prev dag.TaskID = -1
	for i := 0; i < 5; i++ {
		id := b.AddTask("", 2)
		if prev >= 0 {
			b.AddEdge(prev, id, 50)
		}
		prev = id
	}
	in := sched.Consistent(b.MustBuild(), platform.Homogeneous(3, 0, 1))
	s, _ := listsched.HEFT{}.Schedule(in)
	contended, err := Run(s, Config{Contention: true})
	if err != nil {
		t.Fatal(err)
	}
	if contended.Transfers != 0 {
		t.Fatalf("Transfers = %d, want 0", contended.Transfers)
	}
	if contended.Makespan != s.Makespan() {
		t.Fatalf("makespan changed without transfers: %g vs %g", contended.Makespan, s.Makespan())
	}
}

func TestContentionWithNoiseComposes(t *testing.T) {
	in := testfix.Topcuoglu()
	s, _ := listsched.HEFT{}.Schedule(in)
	rep, err := Run(s, Config{Contention: true, Noise: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 || rep.Stretch < 0.7 {
		t.Fatalf("implausible contended noisy replay: %+v", rep)
	}
	// Deterministic per seed.
	rep2, _ := Run(s, Config{Contention: true, Noise: 0.2, Seed: 3})
	if rep.Makespan != rep2.Makespan {
		t.Fatal("not deterministic")
	}
}
