package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// FuzzStreamEvents throws arbitrary NDJSON at the streaming endpoint:
// malformed lines, duplicate task ids, cycle-closing edges, bogus
// configs. Every session must be answered — 400 for rejected input,
// 200 for streams that got going (errors then arrive in-band), 503/504
// for overload and deadline — and the handler must never panic (a
// panic escapes the recorder and fails the fuzz run loudly).
func FuzzStreamEvents(f *testing.F) {
	task := func(id int) string {
		return `{"op":"addTask","id":` + string(rune('0'+id)) + `,"weight":1}` + "\n"
	}
	f.Add([]byte(`{"op":"config","algorithm":"HEFT","processors":2,"batchSize":1}` + "\n" +
		task(0) + task(1) + `{"op":"addEdge","from":0,"to":1,"data":2}` + "\n" + `{"op":"seal"}` + "\n"))
	f.Add([]byte(`{"op":"config"}` + "\n" + task(0) + task(0) + `{"op":"seal"}` + "\n"))
	f.Add([]byte(`{"op":"config"}` + "\n" + task(0) + task(1) +
		`{"op":"addEdge","from":0,"to":1}` + "\n" + `{"op":"addEdge","from":1,"to":0}` + "\n"))
	f.Add([]byte(`{"op":"config","algorithm":"NOPE"}` + "\n"))
	f.Add([]byte(`{"op":"config","processors":-1}` + "\n"))
	f.Add([]byte(`{"op":"config","processors":999999}` + "\n"))
	f.Add([]byte(`{"op":"config","priority":"urgent"}` + "\n"))
	f.Add([]byte(`{"op":"config","priority":"low","timeoutMs":50}` + "\n" + task(0) + `{"op":"seal"}` + "\n"))
	f.Add([]byte(`{"op":"config"}` + "\n" + `{"op":`))
	f.Add([]byte(`{"op":"config"}` + "\n" + `{"op":"bogus"}` + "\n"))
	f.Add([]byte(`{"op":"config"}` + "\n" + `{"op":"advance","clock":-5}` + "\n"))
	f.Add([]byte(`{"op":"config"}` + "\n" + task(0) +
		`{"op":"advance","clock":1e12}` + "\n" + `{"op":"flush"}` + "\n" + task(1) +
		`{"op":"addEdge","from":1,"to":0}` + "\n"))
	f.Add([]byte(`{"op":"config"}` + "\n" +
		`{"op":"addTask","id":0,"weight":1,"costs":[1,2,3]}` + "\n" + `{"op":"seal"}` + "\n"))
	f.Add([]byte(`{"op":"config"}` + "\n" +
		`{"op":"addTask","id":0,"weight":-1}` + "\n"))
	f.Add([]byte(`{"op":"seal"}` + "\n"))
	f.Add([]byte(``))
	f.Add([]byte("\n\n\n"))

	s := New(Options{Addr: "127.0.0.1:0", Workers: 2, QueueDepth: 8, CacheSize: -1,
		DefaultTimeout: 2 * time.Second})
	if _, err := s.Start(); err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/schedule/stream", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.handleStream(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		default:
			t.Fatalf("status %d for body %q", rec.Code, body)
		}
	})
}
