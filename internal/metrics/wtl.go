package metrics

import "fmt"

// WTL accumulates pairwise win/tie/loss counts of one reference algorithm
// against a set of competitors — the "better / equal / worse" occurrence
// tables of the literature.
type WTL struct {
	Reference string
	names     []string
	idx       map[string]int
	wins      []int
	ties      []int
	losses    []int
	eps       float64
}

// NewWTL returns a comparison of reference against the competitors. eps is
// the tie tolerance on makespans (1e-9 if zero).
func NewWTL(reference string, competitors []string, eps float64) *WTL {
	if eps == 0 {
		eps = 1e-9
	}
	w := &WTL{
		Reference: reference,
		names:     append([]string(nil), competitors...),
		idx:       make(map[string]int, len(competitors)),
		wins:      make([]int, len(competitors)),
		ties:      make([]int, len(competitors)),
		losses:    make([]int, len(competitors)),
		eps:       eps,
	}
	for i, n := range competitors {
		w.idx[n] = i
	}
	return w
}

// Record compares the reference makespan against one competitor's makespan
// on the same instance. Unknown competitor names are an error.
func (w *WTL) Record(competitor string, refMakespan, compMakespan float64) error {
	i, ok := w.idx[competitor]
	if !ok {
		return fmt.Errorf("metrics: unknown competitor %q", competitor)
	}
	switch {
	case refMakespan < compMakespan-w.eps:
		w.wins[i]++
	case refMakespan > compMakespan+w.eps:
		w.losses[i]++
	default:
		w.ties[i]++
	}
	return nil
}

// Competitors returns the competitor names in registration order.
func (w *WTL) Competitors() []string {
	return append([]string(nil), w.names...)
}

// Counts returns (wins, ties, losses) of the reference against the named
// competitor.
func (w *WTL) Counts(competitor string) (wins, ties, losses int, err error) {
	i, ok := w.idx[competitor]
	if !ok {
		return 0, 0, 0, fmt.Errorf("metrics: unknown competitor %q", competitor)
	}
	return w.wins[i], w.ties[i], w.losses[i], nil
}

// Percent returns the win/tie/loss shares in percent against the named
// competitor (0s when no samples were recorded).
func (w *WTL) Percent(competitor string) (win, tie, loss float64, err error) {
	ws, ts, ls, err := w.Counts(competitor)
	if err != nil {
		return 0, 0, 0, err
	}
	total := ws + ts + ls
	if total == 0 {
		return 0, 0, 0, nil
	}
	f := 100 / float64(total)
	return float64(ws) * f, float64(ts) * f, float64(ls) * f, nil
}
