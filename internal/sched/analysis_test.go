package sched

import (
	"math/rand"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
)

// chainSchedule builds a 3-chain on one of two processors.
func chainSchedule(t *testing.T) *Schedule {
	t.Helper()
	b := dag.NewBuilder("chain")
	t0 := b.AddTask("", 2)
	t1 := b.AddTask("", 3)
	t2 := b.AddTask("", 1)
	b.AddEdge(t0, t1, 1)
	b.AddEdge(t1, t2, 1)
	in := Consistent(b.MustBuild(), platform.Homogeneous(2, 0, 1))
	pl := NewPlan(in)
	pl.Place(0, 0, 0)
	pl.Place(1, 0, 2)
	pl.Place(2, 0, 5)
	return pl.Finalize("chain")
}

func TestAnalyzeChainAllCritical(t *testing.T) {
	s := chainSchedule(t)
	an := Analyze(s)
	for i, sl := range an.Slack {
		if sl > 1e-9 {
			t.Fatalf("chain task %d has slack %g", i, sl)
		}
	}
	if len(an.Critical) != 3 {
		t.Fatalf("Critical = %v", an.Critical)
	}
	// Processor 0 never idles; processor 1 is empty (zero horizon).
	if an.IdleTime[0] != 0 || an.IdleTime[1] != 0 {
		t.Fatalf("IdleTime = %v", an.IdleTime)
	}
}

func TestAnalyzeSlackOnSideBranch(t *testing.T) {
	// Main chain on P0 (makespan 10); a tiny independent task on P1 at
	// time 0 has huge slack.
	b := dag.NewBuilder("side")
	a := b.AddTask("a", 5)
	c := b.AddTask("b", 5)
	side := b.AddTask("side", 1)
	b.AddEdge(a, c, 0)
	in := Consistent(b.MustBuild(), platform.Homogeneous(2, 0, 1))
	pl := NewPlan(in)
	pl.Place(a, 0, 0)
	pl.Place(c, 0, 5)
	pl.Place(side, 1, 0)
	s := pl.Finalize("side")
	an := Analyze(s)
	if an.Slack[side] < 9-1e-6 {
		t.Fatalf("side slack = %g, want 9", an.Slack[side])
	}
	if an.Slack[a] > 1e-9 || an.Slack[c] > 1e-9 {
		t.Fatalf("chain slack = %g/%g, want 0", an.Slack[a], an.Slack[c])
	}
	// Idle on P1: horizon 1, busy 1 → 0. Idle on P0: 0.
	if an.IdleTime[0] != 0 || an.IdleTime[1] != 0 {
		t.Fatalf("IdleTime = %v", an.IdleTime)
	}
}

func TestAnalyzeIdleTime(t *testing.T) {
	b := dag.NewBuilder("idle")
	a := b.AddTask("a", 2)
	c := b.AddTask("b", 2)
	b.AddEdge(a, c, 4)
	in := Consistent(b.MustBuild(), platform.Homogeneous(2, 0, 1))
	pl := NewPlan(in)
	pl.Place(a, 0, 0) // [0,2) on P0
	pl.Place(c, 1, 6) // data arrives at 6 on P1: idle [0,6)
	s := pl.Finalize("idle")
	an := Analyze(s)
	if an.IdleTime[1] != 6 {
		t.Fatalf("IdleTime[1] = %g, want 6", an.IdleTime[1])
	}
	if an.IdleShare[1] != 6.0/8 {
		t.Fatalf("IdleShare[1] = %g", an.IdleShare[1])
	}
}

// Co-located zero-duration assignments (same proc, same start) used to
// share one (proc, start) key in the successor-on-processor bound, so the
// earlier slots were measured against the last slot's successor and
// reported phantom slack. Keyed by timeline slot, each zero-duration task
// is pinned by the assignment that follows it at the same instant.
func TestAnalyzeZeroDurationSlack(t *testing.T) {
	b := dag.NewBuilder("zero")
	a := b.AddTask("a", 0)
	c := b.AddTask("b", 0)
	d := b.AddTask("c", 5)
	in := Consistent(b.MustBuild(), platform.Homogeneous(1, 0, 1))
	pl := NewPlan(in)
	pl.Place(a, 0, 0) // [0,0) slot 0
	pl.Place(c, 0, 0) // [0,0) slot 1
	pl.Place(d, 0, 0) // [0,5) slot 2
	s := pl.Finalize("zero")
	an := Analyze(s)
	// a may not finish later than c's start (both 0), c not later than
	// d's start: holding the per-processor order fixed, nothing slides.
	for i, sl := range an.Slack {
		if sl > 1e-9 {
			t.Fatalf("task %d has slack %g, want 0 (order on P0 is fixed)", i, sl)
		}
	}
	if len(an.Critical) != 3 {
		t.Fatalf("Critical = %v, want all three tasks", an.Critical)
	}
}

// Property: slack is sound — delaying any single task's finish by its
// reported slack keeps the makespan when re-simulated (validated against
// the validator's arrival rule). Weaker practical check: slack is
// non-negative and at least one task is critical.
func TestAnalyzePropertyBattery(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(t, rng, 3+rng.Intn(30), 1+rng.Intn(4))
		pl := NewPlan(in)
		for _, v := range in.G.TopoOrder() {
			p, s, _ := pl.BestEFT(v, true)
			pl.Place(v, p, s)
		}
		s := pl.Finalize("greedy")
		an := Analyze(s)
		if len(an.Critical) == 0 {
			t.Fatal("no critical task")
		}
		for i, sl := range an.Slack {
			if sl < 0 {
				t.Fatalf("negative slack at %d", i)
			}
			// A task finishing at the makespan has zero slack.
			if almostEqual(s.Primary(dag.TaskID(i)).Finish, s.Makespan()) && sl > 1e-6 {
				t.Fatalf("makespan task %d has slack %g", i, sl)
			}
		}
		for p := 0; p < in.P(); p++ {
			if an.IdleTime[p] < -1e-9 {
				t.Fatalf("negative idle on P%d", p)
			}
		}
	}
}
