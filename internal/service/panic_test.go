package service

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestInstrumentRecoversPanic pins the middleware contract: a panicking
// handler yields a clean 500 carrying the request ID, the connection
// survives, and the panic is counted in the metrics.
func TestInstrumentRecoversPanic(t *testing.T) {
	prev := log.Writer()
	log.SetOutput(io.Discard)
	defer log.SetOutput(prev)
	s := New(Options{CacheSize: -1})
	h := s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	id := rec.Header().Get("X-Request-ID")
	if id == "" {
		t.Fatal("no X-Request-ID header")
	}
	if !strings.Contains(rec.Body.String(), id) {
		t.Fatalf("500 body %q does not carry request ID %q", rec.Body.String(), id)
	}
	snap := s.met.Snapshot(0, 0, 0, 0, 0, 0, 0, "", nil, ClusterJSON{})
	if snap.Requests.Panics != 1 {
		t.Fatalf("panics = %d, want 1", snap.Requests.Panics)
	}
	if snap.Requests.ByStatus["500"] != 1 {
		t.Fatalf("byStatus = %v, want one 500", snap.Requests.ByStatus)
	}
}

// TestInstrumentPanicAfterWrite covers the half-written case: once the
// handler has started the response, the recovery must not inject a
// second status line; the panic is still logged and counted.
func TestInstrumentPanicAfterWrite(t *testing.T) {
	prev := log.Writer()
	log.SetOutput(io.Discard)
	defer log.SetOutput(prev)
	s := New(Options{CacheSize: -1})
	h := s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("partial"))
		panic("late boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status rewritten to %d after partial write", rec.Code)
	}
	if got := rec.Body.String(); got != "partial" {
		t.Fatalf("body %q, want the partial write only", got)
	}
	if snap := s.met.Snapshot(0, 0, 0, 0, 0, 0, 0, "", nil, ClusterJSON{}); snap.Requests.Panics != 1 {
		t.Fatalf("panics = %d, want 1", snap.Requests.Panics)
	}
}
