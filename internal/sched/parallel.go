package sched

import (
	"runtime"
	"sync"
)

// ParallelRankThreshold is the task count from which the rank kernels
// (RankUpward, RankDownward, StaticLevel and their variants) evaluate each
// topological level set across worker goroutines instead of walking the
// topological order sequentially. Below it the per-level barrier costs more
// than the rank arithmetic it hides. Tests lower it (together with
// ForceParallelRanks) to exercise the concurrent path on small instances
// under -race.
var ParallelRankThreshold = 65536

// ForceParallelRanks pins the rank kernels to the concurrent level-set
// path regardless of GOMAXPROCS and ParallelRankThreshold. It exists for
// tests that must drive the parallel kernels on small instances (and on
// single-CPU machines, where concurrency still shakes out sharing bugs
// under the race detector even without parallelism).
var ForceParallelRanks = false

// rankShardGrain is the smallest per-worker shard of one level set. Tasks
// within a level are independent, so shard boundaries cannot change any
// computed value — only whether spawning a goroutine is worth it.
const rankShardGrain = 512

// useParallelRanks reports whether the level-set kernels should go wide
// for an n-task instance.
func useParallelRanks(n int) bool {
	if ForceParallelRanks {
		return true
	}
	return runtime.GOMAXPROCS(0) > 1 && n >= ParallelRankThreshold
}

// levelFor evaluates fn over disjoint shards covering [0, n) and returns
// when all shards finished. Each rank kernel calls it once per level set;
// every task of a level depends only on strictly earlier levels, so the
// result is bit-identical to a sequential sweep no matter how the level is
// sharded. Levels too small to amortize a goroutine run inline.
func levelFor(n int, fn func(lo, hi int)) {
	w := runtime.GOMAXPROCS(0)
	shards := n / rankShardGrain
	if ForceParallelRanks {
		// Tests force real concurrency even on tiny levels and single-CPU
		// hosts so the race detector sees the cross-goroutine accesses.
		if w < 4 {
			w = 4
		}
		if shards < 2 && n > 1 {
			shards = 2
		}
	}
	if w > shards {
		w = shards
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
