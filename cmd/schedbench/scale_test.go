package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestScaleResultKeepsBytesPerTask guards the -scale output contract: the
// per-result memory field must survive refactors of scaleResult, because
// downstream tooling (and docs/ALGORITHMS.md tables) read it by name.
func TestScaleResultKeepsBytesPerTask(t *testing.T) {
	rep := scaleReport{
		Suite:   "dagsched-scale",
		Results: []scaleResult{{Algorithm: "HEFT", N: 100, BytesPerTask: 123.5}},
	}
	buf, err := json.Marshal(&rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded struct {
		Results []map[string]any `json:"results"`
	}
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(decoded.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(decoded.Results))
	}
	if _, ok := decoded.Results[0]["bytes_per_task"]; !ok {
		t.Fatalf("scale output dropped the bytes_per_task field: %s", buf)
	}
	if _, ok := decoded.Results[0]["ns_per_task"]; !ok {
		t.Fatalf("scale output dropped the ns_per_task field: %s", buf)
	}
}

// TestCommittedBenchReportHasMemoryField extends the guard to the
// committed artifact: every result in BENCH_sched.json must carry the
// memory-per-task measurement.
func TestCommittedBenchReportHasMemoryField(t *testing.T) {
	buf, err := os.ReadFile("../../BENCH_sched.json")
	if err != nil {
		t.Skipf("BENCH_sched.json not present: %v", err)
	}
	var decoded struct {
		Results []map[string]any `json:"results"`
	}
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatalf("unmarshal BENCH_sched.json: %v", err)
	}
	if len(decoded.Results) == 0 {
		t.Fatal("BENCH_sched.json has no results")
	}
	sawMillion := false
	for _, r := range decoded.Results {
		if _, ok := r["bytes_per_task"]; !ok {
			t.Fatalf("result %v lacks bytes_per_task", r["algorithm"])
		}
		if n, ok := r["n"].(float64); ok && n >= 1000000 {
			if alg, _ := r["algorithm"].(string); strings.EqualFold(alg, "HEFT") {
				sawMillion = true
			}
		}
	}
	if !sawMillion {
		t.Fatal("BENCH_sched.json lacks the HEFT n=1000000 tier")
	}
}
