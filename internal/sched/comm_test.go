package sched

import (
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
)

// fanOut builds a(1) -> {b(1), c(1)} with 4 data units per edge on a
// 2-processor unit system: with the one-port model the two transfers to
// the remote processor must serialize.
func fanOutInstance(t *testing.T) *Instance {
	t.Helper()
	b := dag.NewBuilder("fan")
	a := b.AddTask("a", 1)
	x := b.AddTask("b", 1)
	y := b.AddTask("c", 1)
	b.AddEdge(a, x, 4)
	b.AddEdge(a, y, 4)
	return Consistent(b.MustBuild(), platform.Homogeneous(2, 0, 1))
}

func TestWithCommDefaultsAndKinds(t *testing.T) {
	in := fanOutInstance(t)
	if in.CommModel() != nil || in.CommKind() != platform.KindContentionFree {
		t.Fatalf("default comm = %v/%q", in.CommModel(), in.CommKind())
	}
	op, _ := platform.ModelByKind(platform.KindOnePort, in.Sys)
	bound := in.WithComm(op)
	if bound.CommKind() != platform.KindOnePort || in.CommModel() != nil {
		t.Fatal("WithComm mutated the receiver or dropped the model")
	}
	// One-port idle costs equal the matrices: every cached stat matches.
	if bound.MeanComm(0, 1) != in.MeanComm(0, 1) || bound.CCR() != in.CCR() {
		t.Fatal("one-port rank caches diverge from contention-free")
	}
	if bound.CommCost(0, 1, 4) != in.Sys.CommCost(0, 1, 4) {
		t.Fatal("CommCost diverges")
	}
	// An explicit contention-free model is inert: no reservation state.
	if pl := NewPlan(in.WithComm(platform.ContentionFree(in.Sys))); pl.CommState() != nil {
		t.Fatal("contention-free model produced a comm state")
	}
}

func TestPlanContendedDataReadyAndPlace(t *testing.T) {
	in := fanOutInstance(t)
	op, _ := platform.ModelByKind(platform.KindOnePort, in.Sys)
	pl := NewPlan(in.WithComm(op))
	if pl.CommState() == nil {
		t.Fatal("no comm state under one-port")
	}
	pl.Place(0, 0, 0) // a on P0, [0,1)

	// Estimates do not reserve.
	if got := pl.DataReady(1, 1); got != 5 {
		t.Fatalf("DataReady(b,P1) = %g, want 5", got)
	}
	if m := pl.CommState().Mark(); m != 0 {
		t.Fatalf("estimate journaled %d reservations", m)
	}
	e0 := pl.commEpoch

	pl.Place(1, 1, 5) // b on P1: commits the transfer [1,5)
	if pl.commEpoch == e0 {
		t.Fatal("committed reservation did not bump commEpoch")
	}
	busy := pl.CommState().Busy()
	if busy[0] != 4 || busy[2+1] != 4 {
		t.Fatalf("port busy = %v, want send0=4 recv1=4", busy)
	}
	// The second transfer now queues behind the first on both ports.
	if got := pl.DataReady(2, 1); got != 9 {
		t.Fatalf("DataReady(c,P1) = %g, want 9 (serialized)", got)
	}
	if got := pl.DataReady(2, 0); got != 1 {
		t.Fatalf("DataReady(c,P0) = %g, want 1 (local)", got)
	}
	// A local placement reserves nothing.
	e1 := pl.commEpoch
	pl.Place(2, 0, 1)
	if pl.commEpoch != e1 {
		t.Fatal("local placement bumped commEpoch")
	}
}

// Place under contention must never start earlier than the caller's
// estimate, even when the caller's start was computed before rival
// reservations landed.
func TestPlanContendedPlaceNeverEarlier(t *testing.T) {
	in := fanOutInstance(t)
	op, _ := platform.ModelByKind(platform.KindOnePort, in.Sys)
	pl := NewPlan(in.WithComm(op))
	pl.Place(0, 0, 0)
	// Estimate b's start on P1 first, then place c's transfer ahead of it.
	s1, _ := pl.EFTOn(1, 1, true)
	pl.Place(2, 1, pl.DataReady(2, 1)) // c grabs the ports [1,5)
	a := pl.Place(1, 1, s1)
	if a.Start < s1 {
		t.Fatalf("committed start %g earlier than estimate %g", a.Start, s1)
	}
	if a.Start != 9 {
		t.Fatalf("b start = %g, want 9 (behind c's transfer)", a.Start)
	}
}

func TestTxnContendedTrialUndoCommit(t *testing.T) {
	in := fanOutInstance(t)
	op, _ := platform.ModelByKind(platform.KindOnePort, in.Sys)
	pl := NewPlan(in.WithComm(op))
	pl.Place(0, 0, 0)
	base := pl.CommState()

	tx := pl.Begin()
	// Estimates before any speculative write read the frozen base state.
	if got := tx.DataReady(1, 1); got != 5 {
		t.Fatalf("txn DataReady = %g, want 5", got)
	}
	m := tx.Mark()
	tx.Place(1, 1, 5)
	if got := tx.DataReady(2, 1); got != 9 {
		t.Fatalf("txn sees own reservation: DataReady = %g, want 9", got)
	}
	// The base plan never sees speculative reservations.
	if got := pl.DataReady(1, 1); got != 5 {
		t.Fatalf("base DataReady = %g after speculative place", got)
	}
	if base.Mark() != 0 {
		t.Fatal("speculative reservation leaked into the base state")
	}

	// Undo rewinds the reservations exactly.
	tx.Undo(m)
	if got := tx.DataReady(2, 1); got != 5 {
		t.Fatalf("after Undo, txn DataReady = %g, want 5", got)
	}

	// Re-place and commit: the base adopts the reservations.
	tx.Place(1, 1, 5)
	tx.Commit()
	if got := pl.DataReady(2, 1); got != 9 {
		t.Fatalf("after Commit, base DataReady = %g, want 9", got)
	}
	if pl.CommState().Busy()[0] != 4 {
		t.Fatalf("send port busy = %v", pl.CommState().Busy())
	}
}

func TestTxnContendedRollbackAndReset(t *testing.T) {
	in := fanOutInstance(t)
	op, _ := platform.ModelByKind(platform.KindOnePort, in.Sys)
	pl := NewPlan(in.WithComm(op))
	pl.Place(0, 0, 0)

	tx := pl.Begin()
	tx.Place(1, 1, 5)
	tx.Rollback()
	if got := pl.DataReady(1, 1); got != 5 {
		t.Fatalf("rollback leaked: base DataReady = %g", got)
	}

	// Reset keeps the clone while the base's reservations are unchanged…
	tx = pl.Begin()
	tx.Place(1, 1, 5)
	tx.Reset()
	if tx.comm == nil {
		t.Fatal("Reset dropped a still-exact comm clone")
	}
	if got := tx.DataReady(1, 1); got != 5 {
		t.Fatalf("after Reset, txn DataReady = %g, want 5", got)
	}
	// …and drops it once the base moves on.
	pl.Place(1, 1, 5) // bumps commEpoch
	tx.Reset()
	if tx.comm != nil {
		t.Fatal("Reset kept a stale comm clone")
	}
	if got := tx.DataReady(2, 1); got != 9 {
		t.Fatalf("reset txn DataReady = %g, want 9 (base reservations)", got)
	}
}

func TestTxnConcurrentContendedTrials(t *testing.T) {
	in := fanOutInstance(t)
	op, _ := platform.ModelByKind(platform.KindOnePort, in.Sys)
	pl := NewPlan(in.WithComm(op))
	pl.Place(0, 0, 0)

	// Two trials from the same frozen base, evaluated in parallel: each
	// owns its clone; the winner commits.
	txs := []*Txn{pl.Begin(), pl.Begin()}
	done := make(chan int, len(txs))
	for k, tx := range txs {
		go func(k int, tx *Txn) {
			p := k // trial processor
			start := tx.FindSlot(p, tx.DataReady(1, p), in.Cost(1, p), true)
			tx.Place(1, p, start)
			done <- k
		}(k, tx)
	}
	for range txs {
		<-done
	}
	// P0 is local (start 1), P1 pays the contended transfer (start 5).
	if s := txs[0].Copies(1)[0].Start; s != 1 {
		t.Fatalf("P0 trial start = %g, want 1", s)
	}
	if s := txs[1].Copies(1)[0].Start; s != 5 {
		t.Fatalf("P1 trial start = %g, want 5", s)
	}
	txs[0].Commit()
	txs[1].Rollback()
	if got := pl.Makespan(); got != 2 {
		t.Fatalf("makespan = %g, want 2", got)
	}
}

func TestPlanCloneIndependentCommState(t *testing.T) {
	in := fanOutInstance(t)
	op, _ := platform.ModelByKind(platform.KindOnePort, in.Sys)
	pl := NewPlan(in.WithComm(op))
	pl.Place(0, 0, 0)
	cp := pl.Clone()
	cp.Place(1, 1, 5)
	if got := pl.DataReady(1, 1); got != 5 {
		t.Fatalf("clone reservation leaked into original: DataReady = %g", got)
	}
	if got := cp.DataReady(2, 1); got != 9 {
		t.Fatalf("clone DataReady = %g, want 9", got)
	}
}

func TestSharedLinkSerializesSiblingTransfers(t *testing.T) {
	in := fanOutInstance(t)
	sl, err := platform.NewSharedLink(in.Sys, platform.SharedLinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlan(in.WithComm(sl))
	pl.Place(0, 0, 0)
	pl.Place(1, 1, pl.DataReady(1, 1))
	// On one shared bus the second transfer waits even toward P0-local…
	if got := pl.DataReady(2, 1); got != 9 {
		t.Fatalf("shared-link DataReady = %g, want 9", got)
	}
	// …while local data still needs no bus at all.
	if got := pl.DataReady(2, 0); got != 1 {
		t.Fatalf("local DataReady = %g, want 1", got)
	}
}

func TestValidateUsesModelCosts(t *testing.T) {
	// Under a half-bandwidth shared link, transfers take twice as long; a
	// schedule built contention-free must fail the contended validator.
	in := fanOutInstance(t)
	sl, err := platform.NewSharedLink(in.Sys, platform.SharedLinkConfig{Bandwidth: []float64{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlan(in)
	pl.Place(0, 0, 0)
	pl.Place(1, 1, 5) // legal contention-free (arrival 5)
	pl.Place(2, 0, 1)
	s := pl.Finalize("test")
	if err := s.Validate(); err != nil {
		t.Fatalf("contention-free validation: %v", err)
	}
	bound := in.WithComm(sl)
	if got := bound.CommCost(0, 1, 4); got != 8 {
		t.Fatalf("shared-link cost = %g, want 8", got)
	}
	sb := buildSchedule(bound, "test", s.procs)
	if err := sb.Validate(); err == nil {
		t.Fatal("schedule valid under half-bandwidth model, want data-arrival violation")
	}
}
