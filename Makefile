# Development and CI entry points. `make ci` is the tier run before
# merging: static checks, the full test suite under the race detector,
# and a one-iteration benchmark smoke proving the perf-path still builds
# and schedules at every size.

GO ?= go

.PHONY: all build vet test race race-concurrent cluster-chaos bench-smoke fuzz-smoke scale service-bench stream-bench ci

all: build

build:
	$(GO) build ./...

# go vet always; staticcheck when the host has it (not vendored, so CI
# images without it still pass the tier).
vet:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "vet: staticcheck not installed, skipped"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass over the concurrency-heavy subsystems: the
# experiment repetition worker pool, the schedd service (worker pool,
# cache, graceful shutdown, singleflight coalescing, the batch fan-out
# and the 3-node consistent-hash ring e2e — forwarding, peer-cache
# probes, failover, plus the dynamic-membership layer: heartbeat
# failure detection, cache replication with hinted handoff, the
# kill/restart/rejoin e2e and join/leave churn racing in-flight
# batches), the speculative-transaction layer (including
# cloned comm-state trials under contended models), the ILS trial
# machinery, the contention-aware wrappers, the differential suite
# with the per-processor trial workers forced on (and the parallel
# level-set rank kernels plus selection heap forced through every
# algorithm), the fault replay/repair path (exercised concurrently
# through the service and experiment tiers), the adversary's parallel
# population evaluator, the streaming engine (invariant-13 equivalence
# plus the NDJSON session endpoint's worker-slot lifecycle), and the
# dag/timeline substrate the sharded kernels read concurrently. `race`
# already covers them once; this tier re-runs them with fresh state so
# interleavings differ between passes.
race-concurrent:
	$(GO) test -race -count=1 ./internal/experiment/... ./internal/service/... ./internal/stream ./internal/sched ./internal/sched/timeline ./internal/dag ./internal/algo/suite ./internal/core ./internal/algo/contention ./internal/sim ./internal/algo/resched ./internal/adversary

# Chaos tier: the kill/restart/rejoin e2e repeated under the race
# detector with fresh process state each run, so detector timings,
# replication pushes and rejoin sweeps interleave differently every
# time. CHAOS_RUNS overrides the repetition count.
CHAOS_RUNS ?= 5
cluster-chaos:
	$(GO) test -race -count=$(CHAOS_RUNS) -run 'TestClusterKillRestartRejoin|TestChurnDuringBatchProperty' ./internal/service

# One iteration of the scheduler-throughput benchmark at every size,
# plus the transaction-layer micro-benchmarks (trial begin/rollback,
# TryDuplication, MCP ready-queue scaling, ILS end-to-end) — a smoke
# test of the hot paths, not a measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkAlgorithms -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkTxn|BenchmarkTryDuplication|BenchmarkRankLevelSets' -benchtime 1x ./internal/sched ./internal/algo
	$(GO) test -run '^$$' -bench 'BenchmarkMCPScaling' -benchtime 1x ./internal/algo/listsched
	$(GO) test -run '^$$' -bench 'BenchmarkILSEndToEnd' -benchtime 1x ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkPopulationEval' -benchtime 1x ./internal/adversary
	$(GO) test -run '^$$' -bench 'BenchmarkBatchEndpoint' -benchtime 1x ./internal/service
	$(GO) test -run '^$$' -bench 'BenchmarkStreamAppend' -benchtime 1x ./internal/stream

# A few seconds of coverage-guided fuzzing per parser entry point.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadJSON -fuzztime 5s ./internal/dag
	$(GO) test -run '^$$' -fuzz FuzzReadDAX -fuzztime 5s ./internal/workload
	$(GO) test -run '^$$' -fuzz FuzzReadGraphJSON -fuzztime 5s .
	$(GO) test -run '^$$' -fuzz FuzzScheduleRequest -fuzztime 5s ./internal/service
	$(GO) test -run '^$$' -fuzz FuzzStreamEvents -fuzztime 5s ./internal/service
	$(GO) test -run '^$$' -fuzz FuzzRingMessages -fuzztime 5s ./internal/service
	$(GO) test -run '^$$' -fuzz FuzzFaultPlan -fuzztime 5s ./internal/sim
	$(GO) test -run '^$$' -fuzz FuzzSpec -fuzztime 5s ./internal/adversary

# Regenerate BENCH_sched.json (real measurement; takes a minute).
scale:
	$(GO) run ./cmd/schedbench -scale -out BENCH_sched.json

# Regenerate BENCH_service.json: serving-tier batch throughput over
# real HTTP against an in-process schedd.
service-bench:
	$(GO) run ./cmd/schedbench -service -out BENCH_service.json

# Regenerate BENCH_stream.json: the streaming engine's incremental
# re-planning against full recomputation over identical event logs,
# guarded by static-oracle schedule-digest equivalence.
stream-bench:
	$(GO) run ./cmd/schedbench -stream -out BENCH_stream.json

ci: vet race race-concurrent bench-smoke
