// Command schedviz renders a task graph (DOT) or a schedule (SVG Gantt)
// for visual inspection.
//
// Usage:
//
//	schedviz -graph g.json -dot g.dot                  # DAG structure
//	schedviz -graph g.json -algo ILS -svg gantt.svg    # schedule Gantt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dagsched"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "task graph JSON (required)")
		dot       = flag.String("dot", "", "write the DAG as Graphviz DOT to this file")
		svg       = flag.String("svg", "", "schedule the DAG and write an SVG Gantt to this file")
		pngOut    = flag.String("png", "", "schedule the DAG and write a PNG Gantt to this file")
		pngWidth  = flag.Int("png-width", 900, "PNG width in pixels")
		algoName  = flag.String("algo", "ILS", "algorithm for -svg")
		procs     = flag.Int("procs", 4, "processors for -svg")
		ccr       = flag.Float64("ccr", 1.0, "CCR for -svg")
		beta      = flag.Float64("beta", 1.0, "heterogeneity for -svg")
		seed      = flag.Int64("seed", 1, "cost-matrix seed")
	)
	flag.Parse()
	if *graphPath == "" {
		fatal(fmt.Errorf("-graph is required"))
	}
	if *dot == "" && *svg == "" && *pngOut == "" {
		fatal(fmt.Errorf("nothing to do: pass -dot, -svg and/or -png"))
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	g, err := dagsched.ReadGraphJSON(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *dot != "" {
		out, err := os.Create(*dot)
		if err != nil {
			fatal(err)
		}
		if err := g.WriteDOT(out); err != nil {
			fatal(err)
		}
		out.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *dot)
	}
	if *svg != "" || *pngOut != "" {
		a, err := dagsched.AlgorithmByName(*algoName)
		if err != nil {
			fatal(err)
		}
		rng := rand.New(rand.NewSource(*seed))
		in, err := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: *procs, CCR: *ccr, Beta: *beta}, rng)
		if err != nil {
			fatal(err)
		}
		s, err := a.Schedule(in)
		if err != nil {
			fatal(err)
		}
		if err := s.Validate(); err != nil {
			fatal(err)
		}
		if *svg != "" {
			out, err := os.Create(*svg)
			if err != nil {
				fatal(err)
			}
			if err := dagsched.WriteGanttSVG(out, s); err != nil {
				fatal(err)
			}
			out.Close()
			fmt.Fprintf(os.Stderr, "wrote %s (makespan %.4g)\n", *svg, s.Makespan())
		}
		if *pngOut != "" {
			out, err := os.Create(*pngOut)
			if err != nil {
				fatal(err)
			}
			if err := dagsched.WriteGanttPNG(out, s, *pngWidth); err != nil {
				fatal(err)
			}
			out.Close()
			fmt.Fprintf(os.Stderr, "wrote %s (makespan %.4g)\n", *pngOut, s.Makespan())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedviz:", err)
	os.Exit(1)
}
