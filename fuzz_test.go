package dagsched_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"dagsched"
)

// FuzzReadGraphJSON asserts the public graph decoder never panics and
// that every accepted graph is well-formed and round-trips losslessly
// through the JSON encoding. It exercises the same decoder as
// dag.ReadJSON but through the public API surface the CLI tools use.
func FuzzReadGraphJSON(f *testing.F) {
	// Seed corpus: valid graphs and structured near-misses (bad ids,
	// self-loops, cycles, negative weights, truncated and non-JSON
	// input). More seeds live in testdata/fuzz/FuzzReadGraphJSON.
	f.Add([]byte(`{"tasks":[{"id":0,"weight":1}],"edges":[]}`))
	f.Add([]byte(`{"name":"g","tasks":[{"id":0,"name":"a","weight":1},{"id":1,"weight":2}],"edges":[{"from":0,"to":1,"data":3}]}`))
	f.Add([]byte(`{"tasks":[{"id":0,"weight":1},{"id":1,"weight":1}],"edges":[{"from":0,"to":1,"data":1},{"from":1,"to":0,"data":1}]}`))
	f.Add([]byte(`{"tasks":[{"id":5,"weight":1}],"edges":[]}`))
	f.Add([]byte(`{"tasks":[{"id":0,"weight":1}],"edges":[{"from":0,"to":0,"data":1}]}`))
	f.Add([]byte(`{"tasks":[{"id":0,"weight":-2}],"edges":[]}`))
	f.Add([]byte(`{"tasks":[{"id":0,"weight":1}],"edges":[{"from":0,"to":9,"data":1}]}`))
	f.Add([]byte(`{"tasks":`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := dagsched.ReadGraphJSON(bytes.NewReader(data))
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		if g.Len() == 0 {
			t.Fatal("accepted an empty graph")
		}
		if got := len(g.TopoOrder()); got != g.Len() {
			t.Fatalf("topological order covers %d of %d tasks", got, g.Len())
		}
		for _, e := range g.Edges() {
			if e.Data < 0 || e.From == e.To {
				t.Fatalf("accepted bad edge %+v", e)
			}
		}
		// Accepted graphs must survive a marshal/parse round trip.
		out, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		back, err := dagsched.ReadGraphJSON(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if back.Len() != g.Len() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d tasks, %d/%d edges",
				g.Len(), back.Len(), g.NumEdges(), back.NumEdges())
		}
	})
}
