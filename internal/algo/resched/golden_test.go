package resched_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dagsched/internal/algo"
	"dagsched/internal/algo/dup"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/algo/resched"
	"dagsched/internal/sched"
	"dagsched/internal/sim"
	"dagsched/internal/testfix"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_robust.json from the current fault/repair path")

type goldenRepair struct {
	Makespan float64 `json:"makespan"`
	Digest   string  `json:"digest"`
}

type goldenEntry struct {
	Makespan float64                 `json:"makespan"`
	Stranded []int                   `json:"stranded"`
	Killed   int                     `json:"killed"`
	Restarts int                     `json:"restarts"`
	Repaired map[string]goldenRepair `json:"repaired"`
}

// TestGoldenFaultReplay pins the acceptance contract: the same instance
// and the same fault seed produce a bit-identical degradation report and
// a bit-identical repaired schedule (captured as the placement digest),
// for every repair policy.
func TestGoldenFaultReplay(t *testing.T) {
	type fixture struct {
		name string
		in   *sched.Instance
	}
	fixtures := []fixture{{"topcuoglu", testfix.Topcuoglu()}}
	for i, in := range testfix.AppGraphs(4, 5)[:2] {
		fixtures = append(fixtures, fixture{fmt.Sprintf("app%d", i), in})
	}
	algs := []algo.Algorithm{listsched.HEFT{}, dup.BTDH{}}
	seeds := []int64{31, 207}

	got := map[string]goldenEntry{}
	for _, fx := range fixtures {
		for _, a := range algs {
			s, err := a.Schedule(fx.in)
			if err != nil {
				t.Fatalf("%s/%s: %v", fx.name, a.Name(), err)
			}
			for _, seed := range seeds {
				fp := sim.SampleCrashes(fx.in.P(), 0.5, s.Makespan(), seed)
				fp.Jitter, fp.Seed = 0.15, seed
				rep, err := sim.Run(s, sim.Config{Faults: &fp})
				if err != nil {
					t.Fatalf("%s/%s/%d: %v", fx.name, a.Name(), seed, err)
				}
				e := goldenEntry{
					Makespan: rep.Makespan,
					Stranded: append([]int{}, rep.Faults.Stranded...),
					Killed:   rep.Faults.Killed,
					Restarts: rep.Faults.Restarts,
					Repaired: map[string]goldenRepair{},
				}
				for _, pol := range resched.Policies() {
					r, _, err := resched.React(s, &fp, pol)
					if err != nil {
						t.Fatalf("%s/%s/%d/%s: %v", fx.name, a.Name(), seed, pol, err)
					}
					e.Repaired[pol.Name()] = goldenRepair{
						Makespan: r.Makespan(),
						Digest:   testfix.ScheduleDigest(r),
					}
				}
				got[fmt.Sprintf("%s/%s/%d", fx.name, a.Name(), seed)] = e
			}
		}
	}

	path := filepath.Join("testdata", "golden_robust.json")
	if *updateGolden {
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d entries)", path, len(got))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("fixture has %d entries, current run produced %d", len(want), len(got))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("fixture entry %s not reproduced", k)
		}
		if !reflect.DeepEqual(w, g) {
			t.Errorf("%s drifted:\n  fixture %+v\n  current %+v", k, w, g)
		}
	}
}
