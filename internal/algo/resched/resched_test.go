package resched_test

import (
	"math"
	"testing"

	"dagsched/internal/algo/listsched"
	"dagsched/internal/algo/resched"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
	"dagsched/internal/sim"
	"dagsched/internal/testfix"
)

func heftTopcuoglu(t *testing.T) *sched.Schedule {
	t.Helper()
	s, err := listsched.HEFT{}.Schedule(testfix.Topcuoglu())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPolicyRegistry(t *testing.T) {
	names := resched.Names()
	if len(names) != 3 {
		t.Fatalf("registry has %v", names)
	}
	for _, n := range names {
		p, err := resched.ByName(n)
		if err != nil || p.Name() != n || p.Description() == "" {
			t.Fatalf("policy %q: %v / %+v", n, err, p)
		}
	}
	if _, err := resched.ByName("nope"); err == nil {
		t.Fatal("unknown policy resolved")
	}
	if resched.Default().Name() != "auto" {
		t.Fatalf("default policy %s", resched.Default())
	}
}

func TestRepairSurvivesCrash(t *testing.T) {
	s := heftTopcuoglu(t)
	in := s.Instance()
	ev := resched.Event{Proc: 0, Time: s.Makespan() * 0.4}
	for _, p := range resched.Policies() {
		r, out, err := p.Assess(s, []resched.Event{ev})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("%s: repaired schedule invalid: %v", p, err)
		}
		// Nothing on the dead processor past the crash instant.
		for _, a := range r.OnProc(ev.Proc) {
			if a.Finish > ev.Time+1e-9 {
				t.Fatalf("%s: task %d runs on dead P%d until %g (crash at %g)", p, a.Task, ev.Proc, a.Finish, ev.Time)
			}
		}
		// Frozen work is preserved exactly: every original copy that had
		// started by the reaction time and survived the crash reappears.
		for i := 0; i < in.N(); i++ {
			for _, c := range s.Copies(dag.TaskID(i)) {
				if c.Start > ev.Time+1e-9 || (c.Proc == ev.Proc && c.Finish > ev.Time+1e-9) {
					continue
				}
				found := false
				for _, rc := range r.Copies(dag.TaskID(i)) {
					if rc.Proc == c.Proc && math.Abs(rc.Start-c.Start) < 1e-9 {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s: frozen copy of task %d on P%d@%g was restarted or dropped", p, i, c.Proc, c.Start)
				}
			}
		}
		if out.Nominal != s.Makespan() || out.Repaired != r.Makespan() {
			t.Fatalf("%s: outcome %+v inconsistent with schedules", p, out)
		}
		if out.Policy != p.Name() {
			t.Fatalf("%s: outcome policy %q", p, out.Policy)
		}
	}
}

func TestAutoNeverWorseThanEitherPrimitive(t *testing.T) {
	s := heftTopcuoglu(t)
	ev := []resched.Event{{Proc: 2, Time: s.Makespan() * 0.3}}
	mk := func(name string) float64 {
		p, err := resched.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Repair(s, ev)
		if err != nil {
			t.Fatal(err)
		}
		return r.Makespan()
	}
	auto, remap, suffix := mk("auto"), mk("remap-stranded"), mk("reschedule-suffix")
	if auto > remap+1e-9 || auto > suffix+1e-9 {
		t.Fatalf("auto %g worse than remap %g or suffix %g", auto, remap, suffix)
	}
}

func TestRepairErrors(t *testing.T) {
	s := heftTopcuoglu(t)
	p := resched.Default()
	if _, err := p.Repair(s, nil); err == nil {
		t.Fatal("no events accepted")
	}
	if _, err := p.Repair(s, []resched.Event{{Proc: 99, Time: 1}}); err == nil {
		t.Fatal("out-of-range processor accepted")
	}
	if _, err := p.Repair(s, []resched.Event{{Proc: 0, Time: -1}}); err == nil {
		t.Fatal("negative time accepted")
	}
	var all []resched.Event
	for q := 0; q < s.Instance().P(); q++ {
		all = append(all, resched.Event{Proc: q, Time: 1})
	}
	if _, err := p.Repair(s, all); err == nil {
		t.Fatal("all-processors-dead accepted")
	}
}

func TestReactIterativeProtocol(t *testing.T) {
	s := heftTopcuoglu(t)
	ms := s.Makespan()
	fp := &sim.FaultPlan{Crashes: []sim.Crash{
		{Proc: 0, At: ms * 0.3},
		{Proc: 1, At: ms * 0.6},
		{Proc: 2, At: ms * 0.2, Until: ms * 0.25}, // transient: ignored by repair
	}}
	r, out, err := resched.React(s, fp, resched.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("repaired schedule invalid: %v", err)
	}
	for _, c := range fp.Crashes {
		if c.Until != 0 {
			continue
		}
		for _, a := range r.OnProc(c.Proc) {
			if a.Finish > c.At+1e-9 {
				t.Fatalf("task %d still on crashed P%d until %g", a.Task, c.Proc, a.Finish)
			}
		}
	}
	if out.Repaired != r.Makespan() || out.Nominal != ms {
		t.Fatalf("outcome %+v", out)
	}
	// No permanent crashes: schedule unchanged.
	calm := &sim.FaultPlan{Crashes: []sim.Crash{{Proc: 0, At: 1, Until: 2}}, Jitter: 0.1}
	same, _, err := resched.React(s, calm, resched.Default())
	if err != nil {
		t.Fatal(err)
	}
	if same != s {
		t.Fatal("transient-only plan rebuilt the schedule")
	}
}

func TestCrashEvents(t *testing.T) {
	fp := &sim.FaultPlan{Crashes: []sim.Crash{
		{Proc: 2, At: 9},
		{Proc: 0, At: 4},
		{Proc: 1, At: 4, Until: 6},
		{Proc: 3, At: 4},
	}}
	evs := resched.CrashEvents(fp)
	want := []resched.Event{{Proc: 0, Time: 4}, {Proc: 3, Time: 4}, {Proc: 2, Time: 9}}
	if len(evs) != len(want) {
		t.Fatalf("events %+v", evs)
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("event %d: %+v want %+v", i, evs[i], want[i])
		}
	}
	if resched.CrashEvents(nil) != nil {
		t.Fatal("nil plan has events")
	}
}

func TestMakespanSlack(t *testing.T) {
	s := heftTopcuoglu(t)
	sl := resched.MakespanSlack(s)
	if sl < 0 || sl > 1 || math.IsNaN(sl) {
		t.Fatalf("slack %g out of [0,1]", sl)
	}
}

func TestEvalRobustness(t *testing.T) {
	s := heftTopcuoglu(t)
	cfg := resched.RobustnessConfig{Samples: 12, Rate: 0.5, Seed: 3}
	a, err := resched.EvalRobustness(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := resched.EvalRobustness(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("robustness not deterministic: %+v vs %+v", a, b)
	}
	if a.Samples != 12 || a.CompletionRate < 0 || a.CompletionRate > 1 {
		t.Fatalf("robustness %+v", a)
	}
	if a.MeanDegradation <= 0 || a.MaxDegradation < a.MeanDegradation && a.CompletionRate == 0 {
		t.Fatalf("degradation stats implausible: %+v", a)
	}
	if a.MaxDegradation < 1 {
		t.Fatalf("max degradation %g < 1", a.MaxDegradation)
	}
	if _, err := resched.EvalRobustness(s, resched.RobustnessConfig{Rate: 1.5}); err == nil {
		t.Fatal("rate out of range accepted")
	}
}
