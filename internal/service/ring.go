package service

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ringReplicas is the number of virtual nodes each peer contributes to
// the consistent-hash ring. More replicas smooth the key distribution
// (the expected share of each of N peers concentrates around 1/N) at a
// small lookup-table cost; 64 keeps the worst observed imbalance under
// ~2x at the peer counts a schedd deployment uses.
const ringReplicas = 64

// hashRing maps cache keys to owning peers with consistent hashing:
// every peer is hashed onto a uint64 circle at ringReplicas points, and
// a key belongs to the first peer point at or after the key's own hash
// (wrapping at the top). Adding or removing one peer therefore moves
// only the keys in the arcs that peer's points cover — about 1/N of the
// key space — while every other key keeps its owner, which is what
// keeps the peer caches warm across membership changes.
//
// A ring is immutable after newRing; lookups are safe for concurrent
// use without locking.
type hashRing struct {
	points []ringPoint
	peers  []string // distinct peers, sorted
}

type ringPoint struct {
	hash uint64
	peer int // index into peers
}

// newRing builds a ring over the distinct non-empty peers. A ring needs
// at least two peers to be useful, but a single-peer (or empty) ring is
// still well-formed: owner returns that peer (or "").
func newRing(peers []string) *hashRing {
	seen := make(map[string]bool, len(peers))
	var distinct []string
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		distinct = append(distinct, p)
	}
	sort.Strings(distinct)
	r := &hashRing{peers: distinct}
	for i, p := range distinct {
		for v := 0; v < ringReplicas; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", p, v)), peer: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// ringHash places a string on the circle. sha256 rather than a fast
// non-cryptographic hash: ring construction is rare, and uniformity of
// the virtual-node positions directly bounds load imbalance.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// find returns the index of the first point at or after h, wrapping.
func (r *hashRing) find(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// owner returns the peer that owns key, or "" on an empty ring.
func (r *hashRing) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.peers[r.points[r.find(ringHash(key))].peer]
}

// successors returns all peers in ring order starting at key's owner:
// the failover order a caller should try when the owner is unreachable.
// The slice is freshly allocated and contains each peer exactly once.
func (r *hashRing) successors(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.peers))
	taken := make([]bool, len(r.peers))
	for i, start := 0, r.find(ringHash(key)); i < len(r.points) && len(out) < len(r.peers); i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !taken[p] {
			taken[p] = true
			out = append(out, r.peers[p])
		}
	}
	return out
}

// size returns the number of distinct peers on the ring.
func (r *hashRing) size() int { return len(r.peers) }
