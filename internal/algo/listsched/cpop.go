package listsched

import (
	"math"

	"dagsched/internal/algo"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// CPOP is the Critical-Path-On-a-Processor algorithm of Topcuoglu et al.:
// task priority is rank_u + rank_d; every critical-path task is pinned to
// the single processor that minimizes the critical path's total execution
// cost, all other tasks use insertion-based best EFT; tasks are consumed
// from a ready queue in priority order.
type CPOP struct{}

// Name implements algo.Algorithm.
func (CPOP) Name() string { return "CPOP" }

// Schedule implements algo.Algorithm.
func (CPOP) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	up := sched.RankUpward(in)
	down := sched.RankDownward(in)
	prio := make([]float64, in.N())
	for i := range prio {
		prio[i] = up[i] + down[i]
	}
	cpPath, _ := sched.CriticalPathMean(in)
	onCP := make([]bool, in.N())
	for _, v := range cpPath {
		onCP[v] = true
	}
	// The critical-path processor minimizes the CP's total execution cost.
	cpProc, bestCost := 0, math.Inf(1)
	for p := 0; p < in.P(); p++ {
		var sum float64
		for _, v := range cpPath {
			sum += in.Cost(v, p)
		}
		if sum < bestCost {
			cpProc, bestCost = p, sum
		}
	}

	pl := sched.NewPlan(in)
	rl := algo.NewReadyList(in.G)
	for !rl.Empty() {
		// Highest-priority ready task; ascending-id ready list breaks ties.
		var pick dag.TaskID = -1
		for _, r := range rl.Ready() {
			if pick == -1 || prio[r] > prio[pick] {
				pick = r
			}
		}
		if onCP[pick] {
			s, _ := pl.EFTOn(pick, cpProc, true)
			pl.Place(pick, cpProc, s)
		} else {
			p, s, _ := pl.BestEFT(pick, true)
			pl.Place(pick, p, s)
		}
		rl.Complete(pick)
	}
	return pl.Finalize("CPOP"), nil
}
