package suite_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dagsched/internal/algo/suite"
	"dagsched/internal/testfix"
)

var updateGolden = flag.Bool("update", false, "rewrite internal/testfix/golden_sched.json from the current scheduling path")

// TestGoldenEquivalence schedules the fixed testfix battery with every
// registry algorithm and asserts the makespan and the exact placement
// digest match the committed goldens. The goldens were captured from the
// pre-timeline linear slot-scan implementation, so this test proves the
// fast scheduling kernel is a pure-performance change: same schedules,
// bit for bit.
func TestGoldenEquivalence(t *testing.T) {
	instances := testfix.GoldenInstances()

	if *updateGolden {
		gf := testfix.GoldenFile{}
		for _, ni := range instances {
			gf[ni.Name] = map[string]testfix.GoldenRecord{}
			for _, a := range suite.All() {
				s, err := a.Schedule(ni.In)
				if err != nil {
					t.Fatalf("%s on %s: %v", a.Name(), ni.Name, err)
				}
				gf[ni.Name][a.Name()] = testfix.GoldenRecord{
					Makespan: s.Makespan(),
					Digest:   testfix.ScheduleDigest(s),
				}
			}
		}
		out, err := json.MarshalIndent(gf, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("..", "..", "testfix", "golden_sched.json")
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d instances × %d algorithms)", path, len(instances), len(suite.All()))
		return
	}

	golden, err := testfix.Golden()
	if err != nil {
		t.Fatal(err)
	}
	for _, ni := range instances {
		want, ok := golden[ni.Name]
		if !ok {
			t.Errorf("instance %s missing from goldens (run with -update)", ni.Name)
			continue
		}
		for _, a := range suite.All() {
			rec, ok := want[a.Name()]
			if !ok {
				t.Errorf("%s: algorithm %s missing from goldens (run with -update)", ni.Name, a.Name())
				continue
			}
			s, err := a.Schedule(ni.In)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name(), ni.Name, err)
			}
			if err := s.Validate(); err != nil {
				t.Errorf("%s on %s: invalid schedule: %v", a.Name(), ni.Name, err)
			}
			if got := s.Makespan(); got != rec.Makespan {
				t.Errorf("%s on %s: makespan %v, golden %v", a.Name(), ni.Name, got, rec.Makespan)
			}
			if got := testfix.ScheduleDigest(s); got != rec.Digest {
				t.Errorf("%s on %s: placement digest drifted from golden schedule", a.Name(), ni.Name)
			}
		}
	}
}
