package sched

import (
	"math"
	"sort"

	"dagsched/internal/dag"
)

// Rank and priority computations shared by the list-scheduling heuristics.
// All ranks use platform-mean execution costs and platform-mean
// communication costs, the standard convention of the literature.

// RankUpward returns rank_u(i) = w̄(i) + max over successors j of
// (c̄(i,j) + rank_u(j)), the HEFT upward rank. Exit tasks have rank equal
// to their mean cost.
func RankUpward(in *Instance) []float64 {
	return rankUpwardWith(in, in.meanW)
}

// RankUpwardSigma returns the σ-augmented upward rank used by ILS:
// identical to RankUpward but with per-task cost estimate w̄(i) + σ(i).
// On homogeneous cost matrices σ = 0 and the result equals RankUpward.
func RankUpwardSigma(in *Instance) []float64 {
	comp := make([]float64, in.N())
	for i := range comp {
		comp[i] = in.meanW[i] + in.sigmaW[i]
	}
	return rankUpwardWith(in, comp)
}

// rankUpwardWith runs the upward-rank recurrence over the exit-anchored
// height levels: every successor of a task lives in a strictly earlier
// level, so levels can be swept in order — and each level sharded over
// workers on large instances — while every task computes the exact float
// expression of the sequential reverse-topological sweep. The two paths
// are bit-identical because a task's rank depends only on already-final
// values and its own successor loop order (adjacency order) is unchanged.
func rankUpwardWith(in *Instance, comp []float64) []float64 {
	ranks := make([]float64, in.N())
	off, tasks := in.G.HeightLevels()
	eval := func(lo, hi int, set []dag.TaskID) {
		for _, v := range set[lo:hi] {
			best := 0.0
			comm := in.meanCommSuccRow(v)
			for j, a := range in.G.Succ(v) {
				if cand := comm[j] + ranks[a.To]; cand > best {
					best = cand
				}
			}
			ranks[v] = comp[v] + best
		}
	}
	if useParallelRanks(in.N()) {
		for l := 0; l+1 < len(off); l++ {
			set := tasks[off[l]:off[l+1]]
			levelFor(len(set), func(lo, hi int) { eval(lo, hi, set) })
		}
	} else {
		eval(0, len(tasks), tasks)
	}
	return ranks
}

// RankDownward returns rank_d(i) = max over predecessors m of
// (rank_d(m) + w̄(m) + c̄(m,i)); entry tasks have rank 0. rank_d is the
// length of the longest mean-cost path from an entry up to (excluding) i.
// It sweeps the entry-anchored depth levels (see rankUpwardWith for why
// this is bit-identical to the topological-order sweep).
func RankDownward(in *Instance) []float64 {
	ranks := make([]float64, in.N())
	off, tasks := in.G.DepthLevels()
	eval := func(lo, hi int, set []dag.TaskID) {
		for _, v := range set[lo:hi] {
			best := 0.0
			comm := in.meanCommPredRow(v)
			for j, p := range in.G.Pred(v) {
				if cand := ranks[p.To] + in.meanW[p.To] + comm[j]; cand > best {
					best = cand
				}
			}
			ranks[v] = best
		}
	}
	if useParallelRanks(in.N()) {
		for l := 0; l+1 < len(off); l++ {
			set := tasks[off[l]:off[l+1]]
			levelFor(len(set), func(lo, hi int) { eval(lo, hi, set) })
		}
	} else {
		eval(0, len(tasks), tasks)
	}
	return ranks
}

// StaticLevel returns SL(i): the largest sum of mean execution costs along
// any path from i to an exit, communication excluded (Sih & Lee's static
// level, also HLFET's priority). Like the other rank kernels it sweeps the
// height levels, going wide per level on large instances.
func StaticLevel(in *Instance) []float64 {
	sl := make([]float64, in.N())
	off, tasks := in.G.HeightLevels()
	eval := func(lo, hi int, set []dag.TaskID) {
		for _, v := range set[lo:hi] {
			best := 0.0
			for _, a := range in.G.Succ(v) {
				if sl[a.To] > best {
					best = sl[a.To]
				}
			}
			sl[v] = in.meanW[v] + best
		}
	}
	if useParallelRanks(in.N()) {
		for l := 0; l+1 < len(off); l++ {
			set := tasks[off[l]:off[l+1]]
			levelFor(len(set), func(lo, hi int) { eval(lo, hi, set) })
		}
	} else {
		eval(0, len(tasks), tasks)
	}
	return sl
}

// ALAPStart returns the as-late-as-possible start time of every task under
// mean execution and mean communication costs (MCP's priority measure):
// alap[i] = CP − bl(i), where bl is the comm-inclusive mean-cost bottom
// level and CP its maximum.
func ALAPStart(in *Instance) []float64 {
	bl := RankUpward(in) // comm-inclusive mean-cost bottom level
	cp := 0.0
	for _, v := range bl {
		if v > cp {
			cp = v
		}
	}
	out := make([]float64, len(bl))
	for i, v := range bl {
		out[i] = cp - v
	}
	return out
}

// CriticalPathMean returns the set of tasks on a longest mean-cost
// comm-inclusive path (the CPOP critical path) and its length. The path is
// traced greedily from the highest-priority entry task, breaking ties by
// smaller task id.
func CriticalPathMean(in *Instance) ([]dag.TaskID, float64) {
	up := RankUpward(in)
	down := RankDownward(in)
	cp := 0.0
	for i := range up {
		if s := up[i] + down[i]; s > cp {
			cp = s
		}
	}
	// The trace tolerance must scale with the path length: up+down along
	// the true critical path differs from cp only by float association
	// dust, which is proportional to cp's magnitude (~ulp(cp) per term),
	// not an absolute constant. A fixed 1e-9 band loses the path entirely
	// once costs reach ~1e12, where a single ulp already exceeds it. The
	// absolute floor keeps the band no tighter than before on small
	// instances, so existing traces are unchanged.
	tol := 1e-9
	if rel := cp * 1e-12; rel > tol {
		tol = rel
	}
	// Start from the entry task whose up+down equals the CP length.
	var start dag.TaskID = -1
	for _, e := range in.G.Entries() {
		if up[e]+down[e] >= cp-tol {
			start = e
			break
		}
	}
	if start == -1 {
		// Rounding pushed every entry below the band; fall back to the
		// entry with the largest up+down (smallest id on ties), which is
		// on a true longest path up to float error.
		bestSum := math.Inf(-1)
		for _, e := range in.G.Entries() {
			if s := up[e] + down[e]; s > bestSum {
				bestSum, start = s, e
			}
		}
	}
	path := []dag.TaskID{start}
	cur := start
	for in.G.OutDegree(cur) > 0 {
		next := dag.TaskID(-1)
		for _, a := range in.G.Succ(cur) {
			if up[a.To]+down[a.To] >= cp-tol {
				next = a.To
				break
			}
		}
		if next == -1 {
			// Same fallback mid-trace: pick the max-sum successor so the
			// path always reaches an exit task instead of silently
			// truncating (CPOP treats the last element as the exit).
			bestSum := math.Inf(-1)
			for _, a := range in.G.Succ(cur) {
				if s := up[a.To] + down[a.To]; s > bestSum {
					bestSum, next = s, a.To
				}
			}
		}
		path = append(path, next)
		cur = next
	}
	return path, cp
}

// SortByRankDesc returns task ids 0..n−1 ordered by decreasing rank,
// breaking ties by smaller id. The caller's rank slice is not modified.
func SortByRankDesc(rank []float64) []dag.TaskID {
	order := make([]dag.TaskID, len(rank))
	for i := range order {
		order[i] = dag.TaskID(i)
	}
	sortStable(order, func(a, b dag.TaskID) bool {
		if rank[a] != rank[b] {
			return rank[a] > rank[b]
		}
		return a < b
	})
	return order
}

// SortByRankAsc is SortByRankDesc with ascending order.
func SortByRankAsc(rank []float64) []dag.TaskID {
	order := make([]dag.TaskID, len(rank))
	for i := range order {
		order[i] = dag.TaskID(i)
	}
	sortStable(order, func(a, b dag.TaskID) bool {
		if rank[a] != rank[b] {
			return rank[a] < rank[b]
		}
		return a < b
	})
	return order
}

// sortStable keeps a single entry point for the priority sorts so the
// tie-breaking policies stay auditable. Stability plus an identical
// comparator guarantees the same permutation as the binary-insertion sort
// it replaces, at O(n log n) moves instead of O(n²) for the 10k-task
// priority lists.
func sortStable(ids []dag.TaskID, less func(a, b dag.TaskID) bool) {
	sort.SliceStable(ids, func(i, j int) bool { return less(ids[i], ids[j]) })
}
