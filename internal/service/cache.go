package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"

	"dagsched/internal/sched"
)

// cacheKey canonically identifies (instance, algorithm, options): the
// instance is re-serialized through Instance.WriteJSON so two requests
// that parse to the same problem hash identically regardless of the
// JSON formatting they arrived in. The communication-model kind, the
// shared-link bandwidth and the faults block are part of the identity —
// the same problem under one-port, or under a different fault plan, is
// a different scheduling query.
func cacheKey(in *sched.Instance, algorithm string, analyze bool, linkBandwidth float64, faults *FaultsRequest) (string, error) {
	h := sha256.New()
	if err := in.WriteJSON(h); err != nil {
		return "", fmt.Errorf("service: hashing instance: %w", err)
	}
	fmt.Fprintf(h, "|alg=%s|analyze=%v|comm=%s|bw=%g", algorithm, analyze, in.CommKind(), linkBandwidth)
	if faults != nil {
		fw, err := json.Marshal(faults)
		if err != nil {
			return "", fmt.Errorf("service: hashing faults block: %w", err)
		}
		fmt.Fprintf(h, "|faults=%s", fw)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// lruCache is a mutex-guarded LRU of schedule responses with hit/miss
// accounting. Stored responses are treated as immutable: Get returns a
// shallow copy with Cached set, never the stored value itself.
type lruCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List               // front = most recent
	byKey  map[string]*list.Element // value: *cacheEntry
	hits   int64
	misses int64
}

type cacheEntry struct {
	key  string
	resp *ScheduleResponse
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns a copy of the cached response marked Cached, or nil.
func (c *lruCache) Get(key string) *ScheduleResponse {
	if c.cap <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.ll.MoveToFront(el)
	cp := *el.Value.(*cacheEntry).resp
	cp.Cached = true
	return &cp
}

// Put stores the response, evicting the least recently used entry when
// full. The caller must not mutate resp afterwards.
func (c *lruCache) Put(key string, resp *ScheduleResponse) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).resp = resp
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, resp: resp})
	c.byKey[key] = el
	if c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// Stats returns hits, misses and current size.
func (c *lruCache) Stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
