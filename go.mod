module dagsched

go 1.22
