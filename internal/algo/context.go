package algo

import (
	"context"
	"fmt"

	"dagsched/internal/sched"
)

// CtxScheduler is implemented by algorithms whose hot loop carries
// cancellation checkpoints: a canceled context makes Schedule return
// promptly with the context's error instead of burning CPU to completion.
type CtxScheduler interface {
	ScheduleContext(ctx context.Context, in *sched.Instance) (*sched.Schedule, error)
}

// ScheduleContext runs the algorithm under ctx. Algorithms implementing
// CtxScheduler abort mid-schedule on cancellation; for the rest the
// context is checked before the (uninterruptible) run and the run's
// result is discarded if the context expired meanwhile. Either way a
// non-nil ctx error is reported as context.Canceled/DeadlineExceeded
// wrapped with the algorithm name.
func ScheduleContext(ctx context.Context, a Algorithm, in *sched.Instance) (*sched.Schedule, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name(), err)
	}
	if ca, ok := a.(CtxScheduler); ok {
		return ca.ScheduleContext(ctx, in)
	}
	s, err := a.Schedule(in)
	if err != nil {
		return nil, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("%s: %w", a.Name(), cerr)
	}
	return s, nil
}

// Checkpoint polls a context cheaply from a scheduling hot loop. A nil
// done channel (context.Background and contexts that can never be
// canceled) makes every Check a single comparison; otherwise the context
// error is loaded once per stride iterations, starting with the very
// first Check so a context canceled before the loop begins aborts it
// immediately. The zero stride defaults to 64.
type Checkpoint struct {
	ctx    context.Context
	done   <-chan struct{}
	stride int
	count  int
}

// NewCheckpoint returns a checkpoint polling ctx every stride Checks.
func NewCheckpoint(ctx context.Context, stride int) *Checkpoint {
	if stride <= 0 {
		stride = 64
	}
	// Prime the counter so the first Check polls: a loop entered with an
	// already-canceled context must not burn stride-1 iterations first.
	return &Checkpoint{ctx: ctx, done: ctx.Done(), stride: stride, count: stride - 1}
}

// Check returns the context's error once it is canceled, polling at the
// checkpoint's stride; it returns nil while the context is live.
func (c *Checkpoint) Check() error {
	if c.done == nil {
		return nil
	}
	c.count++
	if c.count < c.stride {
		return nil
	}
	c.count = 0
	return c.ctx.Err()
}
