package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dagsched/internal/algo"
	"dagsched/internal/algo/suite"
	"dagsched/internal/dag"
	"dagsched/internal/service"
	"dagsched/internal/testfix"
	"dagsched/internal/workload"
)

// streamTestDAG is a small two-join DAG with non-trivial communication,
// shared by the streaming-endpoint tests: the task weights, and edges as
// (from, to, data) triples with from < to.
var streamTestWeights = []float64{2, 3, 3, 4, 5, 4, 4, 1}

var streamTestEdges = [][3]float64{
	{0, 1, 4}, {0, 2, 1}, {0, 3, 1}, {1, 4, 1}, {2, 4, 1}, {2, 5, 2},
	{3, 5, 3}, {4, 6, 5}, {5, 6, 4}, {4, 7, 2}, {5, 7, 1},
}

// streamTestEvents renders the shared DAG as an NDJSON event log opened
// by the given config line: tasks in id order, every edge right after
// its head, a trailing seal.
func streamTestEvents(t *testing.T, config string) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(config)
	sb.WriteString("\n")
	for id, w := range streamTestWeights {
		fmt.Fprintf(&sb, `{"op":"addTask","id":%d,"weight":%g}`+"\n", id, w)
		for _, e := range streamTestEdges {
			if int(e[1]) == id {
				fmt.Fprintf(&sb, `{"op":"addEdge","from":%d,"to":%d,"data":%g}`+"\n", int(e[0]), int(e[1]), e[2])
			}
		}
	}
	sb.WriteString(`{"op":"seal"}` + "\n")
	return sb.String()
}

// streamTestGraphJSON renders the same DAG in the static graph wire
// form for /v1/schedule.
func streamTestGraphJSON(t *testing.T) json.RawMessage {
	t.Helper()
	b := dag.NewBuilder("stream-test")
	for id, w := range streamTestWeights {
		b.AddTask(fmt.Sprintf("t%d", id), w)
	}
	for _, e := range streamTestEdges {
		b.AddEdge(dag.TaskID(e[0]), dag.TaskID(e[1]), e[2])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// deltaLine is the response-side view of one stream delta.
type deltaLine struct {
	Seq       int     `json:"seq"`
	Replanned int     `json:"replanned"`
	Makespan  float64 `json:"makespan"`
	Sealed    bool    `json:"sealed"`
	Placed    []struct {
		Task   int     `json:"task"`
		Proc   int     `json:"proc"`
		Start  float64 `json:"start"`
		Finish float64 `json:"finish"`
	} `json:"placed"`
	Error string `json:"error"`
}

// postStream POSTs an NDJSON event log and decodes every response line.
func postStream(t *testing.T, baseURL, body string) (int, []deltaLine) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/schedule/stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Error responses are one indented JSON object, not NDJSON.
		var e deltaLine
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("decoding error body (status %d): %v", resp.StatusCode, err)
		}
		return resp.StatusCode, []deltaLine{e}
	}
	var lines []deltaLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var d deltaLine
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		lines = append(lines, d)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp.StatusCode, lines
}

// TestStreamEndpointMatchesStatic streams the shared DAG event by event
// and checks the sealed schedule against the static /v1/schedule answer
// for the same graph on the same platform: identical makespan, full
// final assignment list, and intermediate deltas along the way.
func TestStreamEndpointMatchesStatic(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 2, QueueDepth: 16, CacheSize: -1})

	body := streamTestEvents(t,
		`{"op":"config","algorithm":"HEFT","processors":3,"batchSize":3,"finalAssignments":true}`)
	status, lines := postStream(t, c.BaseURL, body)
	if status != http.StatusOK {
		t.Fatalf("stream status %d, lines %+v", status, lines)
	}
	if len(lines) < 2 {
		t.Fatalf("got %d deltas, want at least an intermediate and the sealed one", len(lines))
	}
	last := lines[len(lines)-1]
	if !last.Sealed || last.Error != "" {
		t.Fatalf("last line not a clean sealed delta: %+v", last)
	}
	if len(last.Placed) != len(streamTestWeights) {
		t.Fatalf("sealed delta carries %d assignments, want %d (finalAssignments)", len(last.Placed), len(streamTestWeights))
	}
	for _, l := range lines[:len(lines)-1] {
		if l.Sealed || l.Error != "" {
			t.Fatalf("intermediate line %+v sealed or errored", l)
		}
	}

	static, err := c.Schedule(context.Background(), service.ScheduleRequest{
		Algorithm: "HEFT", Graph: streamTestGraphJSON(t), Processors: 3,
	})
	if err != nil {
		t.Fatalf("static schedule: %v", err)
	}
	if last.Makespan != static.Makespan {
		t.Fatalf("sealed stream makespan %v != static %v", last.Makespan, static.Makespan)
	}

	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if snap.Stream.Sessions < 1 || snap.Stream.Sealed < 1 {
		t.Errorf("stream metrics: sessions=%d sealed=%d, want >= 1", snap.Stream.Sessions, snap.Stream.Sealed)
	}
	if snap.Stream.Deltas < int64(len(lines)) {
		t.Errorf("stream metrics: deltas=%d, want >= %d", snap.Stream.Deltas, len(lines))
	}
}

// TestStreamEndpointValidation drives malformed sessions through the
// endpoint: each must answer 400 (the error precedes any delta) with a
// diagnostic, and the server must keep serving afterwards.
func TestStreamEndpointValidation(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 2, QueueDepth: 16, CacheSize: -1})
	cases := []struct {
		name, body, want string
	}{
		{"empty", "", "config event"},
		{"no config first", `{"op":"addTask","id":0,"weight":1}`, "first event must be"},
		{"malformed json", `{"op":"config"}` + "\n" + `{"op":`, "bad event"},
		{"unknown op", `{"op":"config"}` + "\n" + `{"op":"bogus"}`, "unknown op"},
		{"unknown algorithm", `{"op":"config","algorithm":"NOPE"}`, "unsupported algorithm"},
		{"bad priority", `{"op":"config","priority":"urgent"}`, "unknown priority"},
		{"too many processors", `{"op":"config","processors":100000}`, "processors"},
		{"duplicate task id", `{"op":"config"}` + "\n" + `{"op":"addTask","id":0,"weight":1}` + "\n" + `{"op":"addTask","id":0,"weight":1}`, "out of order"},
		{"cycle edge", `{"op":"config"}` + "\n" +
			`{"op":"addTask","id":0,"weight":1}` + "\n" + `{"op":"addTask","id":1,"weight":1}` + "\n" +
			`{"op":"addEdge","from":0,"to":1}` + "\n" + `{"op":"addEdge","from":1,"to":0}`, "cycle"},
		{"config repeated", `{"op":"config"}` + "\n" + `{"op":"config"}`, "config event after"},
		{"no seal", `{"op":"config"}` + "\n" + `{"op":"addTask","id":0,"weight":1}`, "without a seal"},
		{"seal empty", `{"op":"config"}` + "\n" + `{"op":"seal"}`, "empty stream"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(c.BaseURL+"/v1/schedule/stream", "application/x-ndjson", strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			defer resp.Body.Close()
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("decoding error body: %v", err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d (error %q), want 400", resp.StatusCode, e.Error)
			}
			if !strings.Contains(e.Error, tc.want) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.want)
			}
		})
	}
	// The validation storm must not have wedged a worker: a clean
	// session still completes.
	status, lines := postStream(t, c.BaseURL,
		streamTestEvents(t, `{"op":"config","algorithm":"HEFT","processors":2}`))
	if status != http.StatusOK || len(lines) == 0 || !lines[len(lines)-1].Sealed {
		t.Fatalf("post-storm session: status %d lines %+v", status, lines)
	}
}

// TestStreamEndpointInBandError pins the committed-response error path:
// once deltas have streamed (status 200 is on the wire), a later invalid
// event must arrive as a terminal in-band error line, and the partial
// delta stream before it must be intact.
func TestStreamEndpointInBandError(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 2, QueueDepth: 16, CacheSize: -1})
	body := `{"op":"config","algorithm":"HEFT","processors":2,"batchSize":1}` + "\n" +
		`{"op":"addTask","id":0,"weight":1}` + "\n" +
		`{"op":"addTask","id":1,"weight":2}` + "\n" + // auto-flush emits a delta here
		`{"op":"addTask","id":1,"weight":3}` + "\n" + // duplicate id: the in-band error
		`{"op":"seal"}`
	status, lines := postStream(t, c.BaseURL, body)
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200 (the stream had already started)", status)
	}
	if len(lines) < 2 {
		t.Fatalf("got %d lines, want at least one delta and the error line", len(lines))
	}
	last := lines[len(lines)-1]
	if last.Error == "" || !strings.Contains(last.Error, "out of order") {
		t.Fatalf("terminal line %+v is not the duplicate-id error", last)
	}
	for _, l := range lines[:len(lines)-1] {
		if l.Error != "" || l.Sealed {
			t.Fatalf("delta line %+v corrupted by the failure", l)
		}
	}
}

// TestLowPrioritySheds pins the two-level load shedding: with the
// worker busy and the queue at the shed watermark, a low-priority
// request (single and streaming) answers 503 shed — counted in
// /metrics — while normal traffic still queues; an idle server serves
// low priority normally.
func TestLowPrioritySheds(t *testing.T) {
	slow := &slowAlg{name: "slow", delay: 600 * time.Millisecond}
	_, c := startServer(t, service.Options{
		Workers: 1, QueueDepth: 8, ShedWatermark: 1, CacheSize: -1,
		Resolver: func(name string) (algo.Algorithm, error) {
			if name == "slow" {
				return slow, nil
			}
			return suite.ByName(name)
		},
	})

	graphFor := func(width int) json.RawMessage {
		g, err := workload.ForkJoin(width, 2)
		if err != nil {
			t.Fatalf("ForkJoin: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}

	var wg sync.WaitGroup
	for i, g := range []json.RawMessage{graphFor(3), graphFor(4)} {
		wg.Add(1)
		go func(i int, g json.RawMessage) {
			defer wg.Done()
			if _, err := c.Schedule(context.Background(), service.ScheduleRequest{Algorithm: "slow", Graph: g}); err != nil {
				t.Errorf("normal request %d: %v", i, err)
			}
		}(i, g)
		// The first occupies the lone worker before the second enqueues,
		// so the queue sits at the watermark when the low-priority
		// traffic arrives.
		time.Sleep(100 * time.Millisecond)
	}

	_, err := c.Schedule(context.Background(), service.ScheduleRequest{
		Algorithm: "HEFT", Graph: graphFor(5), Priority: "low",
	})
	if err == nil || !strings.Contains(err.Error(), "HTTP 503") || !strings.Contains(err.Error(), "shed") {
		t.Errorf("low-priority request under load: want 503 shed, got %v", err)
	}
	resp, perr := http.Post(c.BaseURL+"/v1/schedule/stream", "application/x-ndjson",
		strings.NewReader(streamTestEvents(t, `{"op":"config","priority":"low"}`)))
	if perr != nil {
		t.Fatalf("POST stream: %v", perr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("low-priority stream under load: status %d, want 503", resp.StatusCode)
	}

	// An invalid class is a 400, not a silent default.
	_, err = c.Schedule(context.Background(), service.ScheduleRequest{
		Algorithm: "HEFT", Graph: graphFor(5), Priority: "urgent",
	})
	if err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("bogus priority: want 400, got %v", err)
	}

	wg.Wait()
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if snap.Requests.Shed < 2 {
		t.Errorf("requests.shed = %d, want >= 2 (single + stream)", snap.Requests.Shed)
	}

	// Idle again: low priority is served, not shed.
	r, err := c.Schedule(context.Background(), service.ScheduleRequest{
		Algorithm: "HEFT", Graph: graphFor(5), Priority: "low",
	})
	if err != nil || r.Makespan <= 0 {
		t.Errorf("low-priority request on idle server: resp %+v err %v", r, err)
	}
}

// TestBatchNDJSONStreamsPerItem pins the streamed batch mode: with
// "Accept: application/x-ndjson" each item result arrives as its own
// flushed JSON line in completion order — the fast item's line is
// readable while the slow item is still running — closed by a summary
// trailer.
func TestBatchNDJSONStreamsPerItem(t *testing.T) {
	slow := &slowAlg{name: "slow", delay: 800 * time.Millisecond}
	_, c := startServer(t, service.Options{
		Workers: 2, QueueDepth: 16, CacheSize: -1,
		Resolver: func(name string) (algo.Algorithm, error) {
			if name == "slow" {
				return slow, nil
			}
			return suite.ByName(name)
		},
	})
	inst := instanceJSON(t, testfix.Topcuoglu())
	breq, err := json.Marshal(service.BatchRequest{Items: []service.ScheduleRequest{
		{Algorithm: "slow", Instance: inst},
		{Algorithm: "HEFT", Instance: inst},
	}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/schedule/batch", bytes.NewReader(breq))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST batch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	var first service.BatchItemResult
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line %q: %v", sc.Text(), err)
	}
	// The fast item's line must be on the wire while the slow item is
	// still inside its delay: per-item flushing, not a buffered dump.
	if n := slow.completions.Load(); n != 0 {
		t.Errorf("first line arrived after the slow item completed (%d completions): no per-item flush", n)
	}
	if first.Index != 1 || first.Status != http.StatusOK {
		t.Errorf("first line = %+v, want the fast item (index 1, 200)", first)
	}

	if !sc.Scan() {
		t.Fatalf("no second line: %v", sc.Err())
	}
	var second service.BatchItemResult
	if err := json.Unmarshal(sc.Bytes(), &second); err != nil {
		t.Fatalf("second line %q: %v", sc.Text(), err)
	}
	if second.Index != 0 || second.Status != http.StatusOK {
		t.Errorf("second line = %+v, want the slow item (index 0, 200)", second)
	}
	if !sc.Scan() {
		t.Fatalf("no trailer line: %v", sc.Err())
	}
	var trailer struct {
		Succeeded int `json:"succeeded"`
		Failed    int `json:"failed"`
	}
	if err := json.Unmarshal(sc.Bytes(), &trailer); err != nil {
		t.Fatalf("trailer %q: %v", sc.Text(), err)
	}
	if trailer.Succeeded != 2 || trailer.Failed != 0 {
		t.Errorf("trailer = %+v, want succeeded=2 failed=0", trailer)
	}
	if sc.Scan() {
		t.Errorf("unexpected extra line %q", sc.Text())
	}
}
