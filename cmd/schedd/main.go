// Command schedd serves task-graph scheduling over HTTP: POST a problem
// instance (or a bare graph) plus an algorithm name to /v1/schedule and
// get the schedule, its measures and an optional analysis back. See
// docs/SERVICE.md for the API.
//
// Usage:
//
//	schedd                                  # serve on 127.0.0.1:8080
//	schedd -addr :9000 -workers 4           # custom bind and pool size
//	schedd -timeout 10s -max-timeout 1m     # tighter deadlines
//	schedd -cache 0                         # disable the result cache
//
// SIGINT/SIGTERM shut the server down gracefully, draining in-flight
// requests for up to -drain before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dagsched"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers    = flag.Int("workers", 0, "concurrent scheduling runs (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "request queue depth; a full queue answers 503")
		cache      = flag.Int("cache", 256, "LRU result-cache entries (negative disables)")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request scheduling deadline")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "upper bound on client-requested deadlines")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()

	opts := dagsched.ServiceOptions{
		Addr:           *addr,
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cache,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = -1 // flag 0 means off; Options treats 0 as default
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "schedd: serving on %s (workers=%d queue=%d cache=%d)\n",
		*addr, *workers, *queue, *cache)
	if err := dagsched.Serve(ctx, opts, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "schedd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "schedd: drained, bye")
}
