package sched

import (
	"math"
	"sort"

	"dagsched/internal/dag"
)

// Analysis summarizes a schedule's structure: per-task slack under the
// fixed placement, the schedule's own critical tasks, and per-processor
// idle time. It answers the practitioner questions "which tasks actually
// determine the makespan?" and "where is the idle time?".
type Analysis struct {
	// Slack[i] is how much later task i's primary copy could finish
	// without growing the makespan, holding every placement and the
	// per-processor execution order fixed.
	Slack []float64
	// Critical lists the tasks with (near-)zero slack in id order — the
	// schedule's critical set.
	Critical []dag.TaskID
	// IdleTime[p] is the total idle time on processor p before its last
	// assignment finishes; IdleShare divides it by the makespan.
	IdleTime  []float64
	IdleShare []float64
}

// Analyze computes the analysis of a schedule.
func Analyze(s *Schedule) Analysis {
	const eps = 1e-6
	in := s.inst
	n := in.N()
	ms := s.Makespan()

	// latestFinish[i]: the latest time task i's primary copy may finish
	// without delaying (a) any consumer of any of its copies and (b) the
	// next assignment on its processor, computed backwards over the two
	// constraint families. For simplicity and soundness, slack is
	// computed for primary copies only and duplicates are treated as
	// immovable (they only ever relax constraints).
	latest := make([]float64, n)
	for i := range latest {
		latest[i] = ms
	}
	// Process primary copies in reverse start order.
	type ref struct {
		task  dag.TaskID
		start float64
	}
	order := make([]ref, 0, n)
	for i := 0; i < n; i++ {
		order = append(order, ref{dag.TaskID(i), s.Primary(dag.TaskID(i)).Start})
	}
	sort.Slice(order, func(a, b int) bool { return order[a].start > order[b].start })

	// nextStart[i]: the start of the assignment following task i's primary
	// copy on its processor bounds how far the primary can slide. Walking
	// each timeline by slot keeps co-located zero-duration assignments
	// (same proc, same start) distinct — a (proc, start) key would let the
	// last of them overwrite the others' successor bound.
	nextStart := make([]float64, n)
	for i := range nextStart {
		nextStart[i] = math.Inf(1)
	}
	for p := 0; p < in.P(); p++ {
		tl := s.OnProc(p)
		for k, a := range tl {
			if a.Dup {
				continue
			}
			if k+1 < len(tl) {
				nextStart[a.Task] = tl[k+1].Start
			} else {
				nextStart[a.Task] = math.Inf(1)
			}
		}
	}

	for _, r := range order {
		prim := s.Primary(r.task)
		bound := ms
		// Processor-order constraint.
		if nx := nextStart[r.task]; !math.IsInf(nx, 1) {
			slide := nx - prim.Finish
			if b := prim.Finish + slide; b < bound {
				bound = b
			}
		}
		// Consumer constraints: every successor's primary copy must still
		// receive data in time. If the consumer reads from another copy
		// of this task (a duplicate), this primary imposes nothing.
		for _, a := range in.G.Succ(r.task) {
			cons := s.Primary(a.To)
			// Which copy serves cons? The one with the earliest arrival.
			bestArr := math.Inf(1)
			var bestCopy Assignment
			for _, c := range s.Copies(r.task) {
				if t := c.Finish + in.CommCost(c.Proc, cons.Proc, a.Data); t < bestArr {
					bestArr, bestCopy = t, c
				}
			}
			if bestCopy.Dup || bestCopy.Start != prim.Start || bestCopy.Proc != prim.Proc {
				continue // served by a duplicate; the primary may slide
			}
			comm := in.CommCost(prim.Proc, cons.Proc, a.Data)
			// The consumer itself may slide to latest[a.To].
			limit := latest[a.To] - in.Cost(a.To, cons.Proc) - comm
			// But never beyond the consumer's actual start either — the
			// order on the consumer's processor is held fixed via its own
			// bound, which latest[a.To] already encodes.
			if limit < bound {
				bound = limit
			}
		}
		latest[r.task] = bound
	}

	an := Analysis{
		Slack:     make([]float64, n),
		IdleTime:  make([]float64, in.P()),
		IdleShare: make([]float64, in.P()),
	}
	for i := 0; i < n; i++ {
		sl := latest[i] - s.Primary(dag.TaskID(i)).Finish
		if sl < 0 {
			sl = 0
		}
		an.Slack[i] = sl
		if sl <= eps {
			an.Critical = append(an.Critical, dag.TaskID(i))
		}
	}
	for p := 0; p < in.P(); p++ {
		var busy, horizon float64
		for _, a := range s.OnProc(p) {
			busy += a.Duration()
			if a.Finish > horizon {
				horizon = a.Finish
			}
		}
		an.IdleTime[p] = horizon - busy
		if ms > 0 {
			an.IdleShare[p] = an.IdleTime[p] / ms
		}
	}
	return an
}
