// Workflow scheduling: a Montage-style astronomy workflow and a tiled
// Cholesky factorization scheduled on a heterogeneous cloud of 6 VMs,
// rendering the resulting schedules as SVG Gantt charts and showing how
// the choice of algorithm changes the critical resource.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"dagsched"
)

func main() {
	outDir := os.TempDir()
	workflows := []struct {
		name string
		gen  func() (*dagsched.Graph, error)
	}{
		{"montage", func() (*dagsched.Graph, error) { return dagsched.MontageDAG(8) }},
		{"cholesky", func() (*dagsched.Graph, error) { return dagsched.CholeskyDAG(5) }},
	}
	for _, wf := range workflows {
		g, err := wf.gen()
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		in, err := dagsched.MakeInstance(g, dagsched.WorkloadConfig{
			Procs: 6, CCR: 0.5, Beta: 0.75, Latency: 0.1,
		}, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %d tasks, %d edges ==\n", g.Name(), g.Len(), g.NumEdges())
		var best *dagsched.Schedule
		for _, name := range []string{"HEFT", "CPOP", "ILS"} {
			a, err := dagsched.AlgorithmByName(name)
			if err != nil {
				log.Fatal(err)
			}
			s, err := a.Schedule(in)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := dagsched.Simulate(s, dagsched.SimConfig{})
			if err != nil {
				log.Fatal(err)
			}
			var maxU float64
			for _, u := range rep.Utilization {
				if u > maxU {
					maxU = u
				}
			}
			fmt.Printf("  %-5s makespan %8.4g  SLR %.3f  peak utilization %.0f%%\n",
				name, s.Makespan(), dagsched.SLR(s), 100*maxU)
			if best == nil || s.Makespan() < best.Makespan() {
				best = s
			}
		}
		path := filepath.Join(outDir, "dagsched-"+wf.name+".svg")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := dagsched.WriteGanttSVG(f, best); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("  best schedule (%s) written to %s\n\n", best.Algorithm(), path)
	}
}
