package dag

import (
	"math/rand"
	"testing"
)

// checkTopo verifies that order is a permutation of all tasks in which
// every edge goes forward.
func checkTopo(t *testing.T, g *Graph, order []TaskID) {
	t.Helper()
	if len(order) != g.Len() {
		t.Fatalf("order has %d tasks, want %d", len(order), g.Len())
	}
	pos := make(map[TaskID]int, len(order))
	for i, v := range order {
		if _, dup := pos[v]; dup {
			t.Fatalf("task %d appears twice", v)
		}
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge (%d,%d) violated: pos %d >= %d", e.From, e.To, pos[e.From], pos[e.To])
		}
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	g := diamond(t)
	order := g.TopoOrder()
	checkTopo(t, g, order)
	if order[0] != 0 || order[3] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomDAG(rng, 60, 0.1)
	first := g.TopoOrder()
	for i := 0; i < 5; i++ {
		again := g.TopoOrder()
		for k := range first {
			if first[k] != again[k] {
				t.Fatalf("run %d differs at %d: %d vs %d", i, k, first[k], again[k])
			}
		}
	}
}

func TestTopoOrderPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		g := randomDAG(rng, n, 0.15)
		checkTopo(t, g, g.TopoOrder())
	}
}

func TestReverseTopoOrder(t *testing.T) {
	g := diamond(t)
	rev := g.ReverseTopoOrder()
	fwd := g.TopoOrder()
	for i := range fwd {
		if rev[i] != fwd[len(fwd)-1-i] {
			t.Fatalf("rev = %v, fwd = %v", rev, fwd)
		}
	}
}

func TestLevelsAndHeight(t *testing.T) {
	g := diamond(t)
	levels := g.Levels()
	want := []int{0, 1, 1, 2}
	for i, lv := range want {
		if levels[i] != lv {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
	if h := g.Height(); h != 3 {
		t.Fatalf("Height = %d, want 3", h)
	}
}

func TestLevelsChain(t *testing.T) {
	b := NewBuilder("chain")
	var prev TaskID = -1
	for i := 0; i < 5; i++ {
		id := b.AddTask("", 1)
		if prev >= 0 {
			b.AddEdge(prev, id, 1)
		}
		prev = id
	}
	g := b.MustBuild()
	if h := g.Height(); h != 5 {
		t.Fatalf("chain height = %d, want 5", h)
	}
}

func TestIsReachable(t *testing.T) {
	g := diamond(t)
	cases := []struct {
		from, to TaskID
		want     bool
	}{
		{0, 3, true}, {0, 0, true}, {1, 2, false}, {3, 0, false}, {0, 1, true}, {2, 3, true},
	}
	for _, c := range cases {
		if got := g.IsReachable(c.from, c.to); got != c.want {
			t.Errorf("IsReachable(%d,%d) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}
