package sched

import (
	"fmt"
	"math"
	"sort"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched/timeline"
)

// View is the query surface shared by Plan and Txn, so duplication-trial
// machinery (critical-parent search, data-ready times, slot queries, child
// EFT estimation) runs unchanged against either the committed plan or a
// speculative transaction.
type View interface {
	Instance() *Instance
	Scheduled(i dag.TaskID) bool
	Copies(i dag.TaskID) []Assignment
	OnProc(p int) []Assignment
	DataReady(i dag.TaskID, p int) float64
	FindSlot(p int, ready, dur float64, insertion bool) float64
	EFTOn(i dag.TaskID, p int, insertion bool) (start, finish float64)
}

var (
	_ View = (*Plan)(nil)
	_ View = (*Txn)(nil)
)

// Txn is a speculative view of a Plan: placements recorded through it are
// visible to its own queries but never touch the base plan until Commit.
// It replaces the clone-per-trial pattern of the duplication heuristics —
// a trial costs O(changes · log n), not O(plan size):
//
//   - reads pass through to the base plan until the first write;
//   - speculative assignments live in a small per-processor overlay and
//     slot queries run against an O(1) copy-on-write snapshot of the
//     processor's gap index, so even the first write to a processor never
//     pays for the length of its committed timeline;
//   - every Place/PlaceDup appends a journal entry capturing exactly what
//     changed (overlay slot, task-copy overlay, gap-index occupy log), so
//     Undo restores any earlier Mark precisely — the gap set, priority
//     counter and overlay contents equal the pre-op state;
//   - a Txn never mutates shared state, so several transactions begun from
//     the same base evaluate concurrently without synchronization as long
//     as the base itself is left alone until they finish. At most one of
//     them may then Commit: Commit panics if the base changed since Begin.
//
// Misuse (placing a task twice, committing a stale transaction) panics,
// matching Plan's contract: these are programming errors in an algorithm.
type Txn struct {
	base  *Plan
	epoch uint64

	// Speculative state. ins/gaps stay nil until the first write;
	// gaps[p] != nil marks processor p as touched, ins[p] holds its
	// speculative assignments sorted by start, touched lists the touched
	// processors in first-touch order. tasks holds the overlaid byTask
	// entries of the few tasks this transaction gave new copies.
	ins     [][]Assignment
	gaps    []*timeline.GapIndex
	touched []int
	tasks   []taskOverlay
	log     []txnOp
	placed  int // primary copies placed in this transaction
	// srcEpoch[p] is the base's procEpoch when gaps[p] was snapshotted.
	// While they still match at Reset time, the rewound snapshot holds
	// exactly the base's gap set and is reused, so repeated trials on the
	// same processor mutate privately-owned treap nodes in place instead
	// of re-copying paths out of the base index every round.
	srcEpoch []uint64
	// comm is the speculative network reservation state under a contended
	// communication model: cloned from the base plan's state on the first
	// speculative placement (reads before that query the frozen base state
	// directly — TransferStart is a pure query). Reservations are
	// journaled per placement (txnOp.commMark), so Undo rewinds them
	// exactly; Commit swaps the clone into the base. commSrc is the base's
	// commEpoch at clone time, Reset's staleness check.
	comm    platform.CommState
	commSrc uint64
}

// taskOverlay is the transaction's view of one task's copies.
type taskOverlay struct {
	task   dag.TaskID
	copies []Assignment
}

// txnOp journals one placement so Undo can reverse it. Ops are undone in
// LIFO order, which keeps every recorded index valid at undo time.
type txnOp struct {
	task    dag.TaskID
	proc    int
	dup     bool
	slot    int  // insertion index into ins[proc]
	newTask bool // this op created the task's overlay entry
	occ     timeline.OccupyLog
	// commMark is the comm journal position before this placement's
	// reservations (-1 when the op reserved against no contended model).
	commMark int
}

// Mark is a journal position; Undo(m) rewinds the transaction to it.
type Mark int

// Begin opens a transaction over the plan. Begin itself copies nothing;
// cost is one small allocation (drivers evaluating one transaction per
// processor every round should Reset and reuse them instead).
func (pl *Plan) Begin() *Txn {
	return &Txn{base: pl, epoch: pl.epoch}
}

// Reset rewinds the transaction to a freshly-begun state against the
// base plan's current epoch, retaining the internal buffers. It is the
// allocation-free way to reuse one transaction per processor across the
// rounds of a scheduling loop.
//
// Reset rewinds the journal rather than discarding it: Undo restores
// every touched gap-index snapshot to exactly the gap set it was
// snapshotted with, so a snapshot of a processor the base hasn't mutated
// since (procEpoch unchanged) answers identically to a fresh one and is
// kept. That makes the steady state of a trial loop allocation-free in
// the treap too — the reused snapshot mutates its privately-owned nodes
// in place instead of re-copying paths out of the base index each round.
func (tx *Txn) Reset() {
	tx.Undo(0)
	kept := tx.touched[:0]
	for _, p := range tx.touched {
		if tx.gaps[p].OK() && tx.srcEpoch[p] == tx.base.procEpoch[p] {
			kept = append(kept, p)
		} else {
			// The base timeline moved on (or the snapshot degraded):
			// drop it; the next write re-snapshots in O(1).
			tx.gaps[p] = nil
		}
	}
	tx.touched = kept
	tx.epoch = tx.base.epoch
	// The rewound comm clone equals its clone point; it only mirrors the
	// base if the base's reservations haven't moved since.
	if tx.comm != nil && tx.commSrc != tx.base.commEpoch {
		tx.comm = nil
	}
}

// Instance returns the problem being scheduled.
func (tx *Txn) Instance() *Instance { return tx.base.in }

// isTouched reports whether processor p has speculative state.
func (tx *Txn) isTouched(p int) bool { return tx.gaps != nil && tx.gaps[p] != nil }

// OnProc returns the assignments on processor p sorted by start, including
// speculative ones. The slice must not be modified. For a touched
// processor this merges the overlay on demand — it is the slow path of the
// View interface, kept off the trial hot loops (slot queries go through
// the gap-index snapshot instead).
func (tx *Txn) OnProc(p int) []Assignment {
	if !tx.isTouched(p) || len(tx.ins[p]) == 0 {
		return tx.base.procs[p]
	}
	base, ins := tx.base.procs[p], tx.ins[p]
	merged := make([]Assignment, 0, len(base)+len(ins))
	i, j := 0, 0
	for i < len(base) && j < len(ins) {
		// Base entries first on equal starts: reproduces the order of
		// sequential Plan.insert calls (which place after equal starts).
		if base[i].Start <= ins[j].Start {
			merged = append(merged, base[i])
			i++
		} else {
			merged = append(merged, ins[j])
			j++
		}
	}
	merged = append(merged, base[i:]...)
	return append(merged, ins[j:]...)
}

func (tx *Txn) gapIndex(p int) *timeline.GapIndex {
	if tx.isTouched(p) {
		return tx.gaps[p]
	}
	return tx.base.gaps[p]
}

// Copies returns all copies of task i (primary first), including
// speculative ones. The slice must not be modified.
func (tx *Txn) Copies(i dag.TaskID) []Assignment {
	// A transaction touches at most a handful of tasks (the duplicated
	// parents plus possibly the trial task), so a linear scan beats a map.
	for k := len(tx.tasks) - 1; k >= 0; k-- {
		if tx.tasks[k].task == i {
			return tx.tasks[k].copies
		}
	}
	return tx.base.byTask[i]
}

// Scheduled reports whether task i has any copy (the base primary or a
// speculative one).
func (tx *Txn) Scheduled(i dag.TaskID) bool { return len(tx.Copies(i)) > 0 }

// Blocked returns the time from which processor p is unavailable.
func (tx *Txn) Blocked(p int) float64 { return tx.base.blockedFrom[p] }

// DataReady mirrors Plan.DataReady over the transactional view: the
// earliest time all input data of task i is available on processor p,
// taking the best copy — committed or speculative — of every predecessor.
// Under a contended model, arrivals consult the speculative reservation
// state when this transaction has one, else the frozen base state (a pure
// query, safe under concurrent trials).
func (tx *Txn) DataReady(i dag.TaskID, p int) float64 {
	if st := tx.commView(); st != nil {
		return commReady(tx, st, i, p, false)
	}
	in := tx.base.in
	ready := 0.0
	for _, pe := range in.G.Pred(i) {
		copies := tx.Copies(pe.To)
		if len(copies) == 0 {
			panic(fmt.Sprintf("sched: task %d scheduled before predecessor %d", i, pe.To))
		}
		arrival := math.Inf(1)
		for _, c := range copies {
			if t := c.Finish + in.CommCost(c.Proc, p, pe.Data); t < arrival {
				arrival = t
			}
		}
		if arrival > ready {
			ready = arrival
		}
	}
	return ready
}

// commView returns the reservation state queries should read: the
// speculative clone once one exists, otherwise the base plan's state (nil
// under the contention-free model).
func (tx *Txn) commView() platform.CommState {
	if tx.comm != nil {
		return tx.comm
	}
	return tx.base.comm
}

// commitComm is Plan.commitComm against the speculative state: it clones
// the base's reservations on first write, reserves task i's input
// transfers and returns the pre-reservation journal mark along with the
// re-derived start.
func (tx *Txn) commitComm(i dag.TaskID, p int, start float64) (int, float64) {
	if tx.comm == nil {
		tx.comm = tx.base.comm.Clone()
		tx.commSrc = tx.base.commEpoch
	}
	m := tx.comm.Mark()
	ready := commReady(tx, tx.comm, i, p, true)
	if start > ready {
		ready = start
	}
	return m, tx.FindSlot(p, ready, tx.base.in.Cost(i, p), true)
}

// procReady returns the finish time of the last assignment on p (by start
// order), matching Plan.ProcReady over the merged view without merging.
func (tx *Txn) procReady(p int) float64 {
	base := tx.base.procs[p]
	if tx.isTouched(p) {
		if ins := tx.ins[p]; len(ins) > 0 {
			if len(base) == 0 || ins[len(ins)-1].Start >= base[len(base)-1].Start {
				return ins[len(ins)-1].Finish
			}
		}
	}
	if len(base) == 0 {
		return 0
	}
	return base[len(base)-1].Finish
}

// FindSlot mirrors Plan.FindSlot over the transactional view.
func (tx *Txn) FindSlot(p int, ready, dur float64, insertion bool) float64 {
	start := tx.findSlotUnbounded(p, ready, dur, insertion)
	if start+dur > tx.base.blockedFrom[p]+slotEps {
		return math.Inf(1)
	}
	return start
}

func (tx *Txn) findSlotUnbounded(p int, ready, dur float64, insertion bool) float64 {
	if !insertion {
		return math.Max(ready, tx.procReady(p))
	}
	if start, ok := tx.gapIndex(p).EarliestFit(ready, dur); ok {
		return start
	}
	prevFinish := 0.0
	for _, a := range tx.OnProc(p) {
		start := math.Max(ready, prevFinish)
		if start+dur <= a.Start+slotEps {
			return start
		}
		if a.Finish > prevFinish {
			prevFinish = a.Finish
		}
	}
	return math.Max(ready, prevFinish)
}

// EFTOn mirrors Plan.EFTOn over the transactional view.
func (tx *Txn) EFTOn(i dag.TaskID, p int, insertion bool) (start, finish float64) {
	ready := tx.DataReady(i, p)
	dur := tx.base.in.Cost(i, p)
	start = tx.FindSlot(p, ready, dur, insertion)
	return start, start + dur
}

// Place speculatively assigns the primary copy of task i to processor p.
// Under a contended model it reserves the task's input transfers in the
// speculative state and re-derives the start, like Plan.Place.
func (tx *Txn) Place(i dag.TaskID, p int, start float64) Assignment {
	if tx.Scheduled(i) {
		panic(fmt.Sprintf("sched: task %d placed twice", i))
	}
	commMark := -1
	if tx.base.comm != nil {
		commMark, start = tx.commitComm(i, p, start)
	}
	a := Assignment{Task: i, Proc: p, Start: start, Finish: start + tx.base.in.Cost(i, p)}
	tx.insert(a, commMark)
	tx.placed++
	return a
}

// PlaceDup speculatively adds a duplicate copy of task i on processor p.
func (tx *Txn) PlaceDup(i dag.TaskID, p int, start float64) Assignment {
	if !tx.Scheduled(i) {
		panic(fmt.Sprintf("sched: duplicating unscheduled task %d", i))
	}
	commMark := -1
	if tx.base.comm != nil {
		commMark, start = tx.commitComm(i, p, start)
	}
	a := Assignment{Task: i, Proc: p, Start: start, Finish: start + tx.base.in.Cost(i, p), Dup: true}
	tx.insert(a, commMark)
	return a
}

func (tx *Txn) insert(a Assignment, commMark int) {
	p := a.Proc
	tx.touchProc(p)
	ins := tx.ins[p]
	k := sort.Search(len(ins), func(i int) bool { return ins[i].Start > a.Start })
	ins = append(ins, Assignment{})
	copy(ins[k+1:], ins[k:])
	ins[k] = a
	tx.ins[p] = ins
	occ := tx.gaps[p].OccupyLogged(a.Start, a.Finish)

	idx, isNew := tx.touchTask(a.Task)
	ov := &tx.tasks[idx]
	if a.Dup {
		ov.copies = append(ov.copies, a)
	} else {
		ov.copies = append([]Assignment{a}, ov.copies...)
	}
	tx.log = append(tx.log, txnOp{task: a.Task, proc: p, dup: a.Dup, slot: k, newTask: isNew, occ: occ, commMark: commMark})
}

// touchProc takes an O(1) copy-on-write snapshot of processor p's gap
// index on first write (the snapshot stays valid because the base plan is
// frozen while the transaction is live).
func (tx *Txn) touchProc(p int) {
	if tx.gaps == nil {
		tx.ins = make([][]Assignment, len(tx.base.procs))
		tx.gaps = make([]*timeline.GapIndex, len(tx.base.gaps))
		tx.srcEpoch = make([]uint64, len(tx.base.gaps))
	}
	if tx.gaps[p] == nil {
		tx.gaps[p] = tx.base.gaps[p].Snapshot()
		tx.srcEpoch[p] = tx.base.procEpoch[p]
		tx.touched = append(tx.touched, p)
	}
}

// touchTask copies task i's copy list on first write, returning the
// overlay index and whether it was created by this call.
func (tx *Txn) touchTask(i dag.TaskID) (int, bool) {
	for k := range tx.tasks {
		if tx.tasks[k].task == i {
			return k, false
		}
	}
	base := tx.base.byTask[i]
	cp := make([]Assignment, len(base), len(base)+1)
	copy(cp, base)
	tx.tasks = append(tx.tasks, taskOverlay{task: i, copies: cp})
	return len(tx.tasks) - 1, true
}

// Mark returns the current journal position.
func (tx *Txn) Mark() Mark { return Mark(len(tx.log)) }

// Undo rewinds the transaction to an earlier Mark, reversing every
// placement journaled after it in LIFO order. Overlays, task copies and
// gap-index state are restored exactly (see timeline.Revert for the one
// documented exception: an occupy that degraded an index stays degraded,
// which affects query cost, never answers).
func (tx *Txn) Undo(m Mark) {
	for len(tx.log) > int(m) {
		op := tx.log[len(tx.log)-1]
		tx.log = tx.log[:len(tx.log)-1]

		if op.commMark >= 0 {
			tx.comm.Undo(op.commMark)
		}

		ins := tx.ins[op.proc]
		copy(ins[op.slot:], ins[op.slot+1:])
		tx.ins[op.proc] = ins[:len(ins)-1]
		tx.gaps[op.proc].Revert(op.occ)

		idx := -1
		for k := len(tx.tasks) - 1; k >= 0; k-- {
			if tx.tasks[k].task == op.task {
				idx = k
				break
			}
		}
		ov := &tx.tasks[idx]
		if op.dup {
			ov.copies = ov.copies[:len(ov.copies)-1]
		} else {
			ov.copies = ov.copies[1:]
			tx.placed--
		}
		if op.newTask {
			// LIFO undo: the entry this op created is still the last one.
			tx.tasks = tx.tasks[:len(tx.tasks)-1]
		}
	}
}

// Rollback discards the transaction. The base plan was never mutated, so
// this only releases the private state; the Txn must not be used after
// (Reset it to reuse the buffers instead).
func (tx *Txn) Rollback() {
	tx.ins, tx.gaps, tx.touched, tx.tasks, tx.log, tx.placed = nil, nil, nil, nil, nil, 0
	tx.comm = nil
}

// Commit applies the transaction to the base plan: speculative
// assignments are merged into the touched timelines and the copy-on-write
// gap-index snapshots swapped in — O(touched timelines), no re-clone. It
// panics if the base plan was mutated (directly or by another commit)
// since Begin/Reset: trials racing to commit is an algorithmic error. The
// Txn must not be used after Commit until Reset.
func (tx *Txn) Commit() {
	if tx.epoch != tx.base.epoch {
		panic("sched: Txn.Commit against a plan modified since Begin")
	}
	for _, p := range tx.touched {
		if len(tx.ins[p]) > 0 {
			tx.base.procs[p] = tx.OnProc(p)
			tx.base.gaps[p] = tx.gaps[p]
			tx.base.procEpoch[p]++
		}
		// else: every op on p was undone; the reverted snapshot is
		// equivalent to the base index, so keep the base's.

		// Drop the snapshot either way — for a committed processor it is
		// the base's index now, and holding on to it would let a reused
		// transaction mutate the base in place.
		tx.ins[p] = tx.ins[p][:0]
		tx.gaps[p] = nil
	}
	for i := range tx.tasks {
		tx.base.byTask[tx.tasks[i].task] = tx.tasks[i].copies
	}
	if tx.comm != nil {
		// The clone holds the base's reservations plus this transaction's:
		// swap it in. A clone whose every reservation was undone equals the
		// base state; keeping the base's avoids a spurious epoch bump.
		if tx.comm.Mark() > 0 {
			tx.base.comm = tx.comm
			tx.base.commEpoch++
		}
		tx.comm = nil
	}
	tx.base.placed += tx.placed
	tx.base.epoch++

	// Leave the transaction empty (journal included) so a later Reset
	// cannot rewind state that is now owned by the base plan.
	tx.touched = tx.touched[:0]
	tx.tasks = tx.tasks[:0]
	tx.log = tx.log[:0]
	tx.placed = 0
}
