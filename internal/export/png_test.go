package export

import (
	"bytes"
	"image/png"
	"testing"

	"dagsched/internal/algo/dup"
	"dagsched/internal/testfix"
)

func TestGanttPNG(t *testing.T) {
	s := heftSchedule(t)
	var buf bytes.Buffer
	if err := WriteGanttPNG(&buf, s, 640); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("output is not a PNG: %v", err)
	}
	b := img.Bounds()
	if b.Dx() != 640 {
		t.Fatalf("width = %d", b.Dx())
	}
	// 3 processors: 10 + 3*28 + 2*6 + 10 = 116 px tall.
	if b.Dy() != 116 {
		t.Fatalf("height = %d", b.Dy())
	}
	// Some pixels must be colored (not all white/grey): check one known
	// busy location — P0 lane starts at y=12, the earliest task starts at
	// x slightly past the left pad.
	colored := 0
	for x := 0; x < b.Dx(); x++ {
		for y := 0; y < b.Dy(); y++ {
			r, g, bl, _ := img.At(x, y).RGBA()
			if r != g || g != bl { // non-grey pixel
				colored++
			}
		}
	}
	if colored == 0 {
		t.Fatal("no task rectangles rendered")
	}
}

func TestGanttPNGTinyWidthFallsBack(t *testing.T) {
	s := heftSchedule(t)
	var buf bytes.Buffer
	if err := WriteGanttPNG(&buf, s, 5); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 640 {
		t.Fatalf("fallback width = %d", img.Bounds().Dx())
	}
}

func TestGanttPNGWithDuplicates(t *testing.T) {
	s, err := dup.BTDH{}.Schedule(testfix.Topcuoglu())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGanttPNG(&buf, s, 800); err != nil {
		t.Fatal(err)
	}
	if _, err := png.Decode(&buf); err != nil {
		t.Fatal(err)
	}
}
