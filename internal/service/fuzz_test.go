package service

import (
	"bytes"
	"math"
	"testing"

	"dagsched/internal/platform"
)

// FuzzScheduleRequest asserts the /v1/schedule request decoder never
// panics and that anything it accepts is a coherent scheduling problem:
// a resolvable algorithm, at least one processor and one task, a
// registered communication-model kind, no NaN or negative communication
// cost (the decoder must reject poisoned payloads rather than hand them
// to the schedulers), and a hashable cache identity.
func FuzzScheduleRequest(f *testing.F) {
	graph := `{"tasks":[{"id":0,"weight":1},{"id":1,"weight":2}],"edges":[{"from":0,"to":1,"data":3}]}`
	// Seed corpus: valid requests under every model, plus near-misses on
	// each new field.
	f.Add([]byte(`{"algorithm":"HEFT","graph":` + graph + `}`))
	f.Add([]byte(`{"algorithm":"ILS","graph":` + graph + `,"commModel":"one-port"}`))
	f.Add([]byte(`{"algorithm":"HEFT","graph":` + graph + `,"commModel":"contention-free"}`))
	f.Add([]byte(`{"algorithm":"HEFT","graph":` + graph + `,"commModel":"shared-link","linkBandwidth":0.5}`))
	f.Add([]byte(`{"algorithm":"HEFT","graph":` + graph + `,"commModel":"shared-link","linkBandwidth":-1}`))
	f.Add([]byte(`{"algorithm":"HEFT","graph":` + graph + `,"commModel":"shared-link","linkBandwidth":1e999}`))
	f.Add([]byte(`{"algorithm":"HEFT","graph":` + graph + `,"commModel":"one-port","linkBandwidth":2}`))
	f.Add([]byte(`{"algorithm":"HEFT","graph":` + graph + `,"commModel":"bogus"}`))
	f.Add([]byte(`{"algorithm":"HEFT","graph":` + graph + `,"processors":-3,"latency":1e308,"timePerUnit":1e308}`))
	f.Add([]byte(`{"algorithm":"HEFT","instance":{"graph":` + graph + `,"system":{"speeds":[1,1]}}}`))
	f.Add([]byte(`{"algorithm":"HEFT","graph":` + graph + `,"faults":{"rate":0.3,"samples":5,"policy":"auto"}}`))
	f.Add([]byte(`{"algorithm":"HEFT","graph":` + graph + `,"faults":{"plan":{"crashes":[{"proc":1,"at":2}]}}}`))
	f.Add([]byte(`{"algorithm":"HEFT","graph":` + graph + `,"faults":{"plan":{"crashes":[{"proc":99,"at":2}]}}}`))
	f.Add([]byte(`{"algorithm":"HEFT","graph":` + graph + `,"faults":{"rate":7,"policy":"bogus"}}`))
	f.Add([]byte(`{"algorithm":"HEFT","graph":` + graph + `,"faults":{}}`))
	f.Add([]byte(`{"algorithm":"HEFT"}`))
	f.Add([]byte(`{"algorithm":"NOPE","graph":` + graph + `}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	s := New(Options{CacheSize: -1})
	f.Fuzz(func(t *testing.T, body []byte) {
		req, a, in, err := s.parseRequest(bytes.NewReader(body))
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		if req == nil || a == nil || in == nil {
			t.Fatal("accepted request with nil parts")
		}
		if in.P() < 1 || in.N() < 1 {
			t.Fatalf("accepted degenerate problem: P=%d N=%d", in.P(), in.N())
		}
		kind := in.CommKind()
		known := false
		for _, k := range platform.ModelKinds() {
			known = known || k == kind
		}
		if !known {
			t.Fatalf("accepted unknown comm-model kind %q", kind)
		}
		for p := 0; p < in.P(); p++ {
			for q := 0; q < in.P(); q++ {
				if c := in.CommCost(p, q, 1); math.IsNaN(c) || c < 0 {
					t.Fatalf("comm cost (%d,%d) = %g under %q", p, q, c, kind)
				}
			}
		}
		if f := req.Faults; f != nil {
			if f.Plan == nil && f.Rate == 0 {
				t.Fatal("accepted empty faults block")
			}
			if f.Rate < 0 || f.Rate > 1 || f.Samples < 0 || f.Samples > maxFaultSamples {
				t.Fatalf("accepted out-of-range faults block %+v", f)
			}
		}
		if _, err := cacheKey(in, a.Name(), req.Analyze, req.LinkBandwidth, req.Faults); err != nil {
			t.Fatalf("cacheKey: %v", err)
		}
	})
}
