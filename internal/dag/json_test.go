package dag

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func graphsEqual(a, b *Graph) bool {
	if a.Name() != b.Name() || a.Len() != b.Len() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		ta, tb := a.Task(TaskID(i)), b.Task(TaskID(i))
		if ta != tb {
			return false
		}
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !graphsEqual(g, back) {
		t.Fatal("round trip lost information")
	}
}

func TestJSONRoundTripRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		g := randomDAG(rng, 1+rng.Intn(30), 0.2)
		data, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		if !graphsEqual(g, &back) {
			t.Fatal("random round trip lost information")
		}
	}
}

func TestJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":     `{`,
		"sparse ids":   `{"tasks":[{"id":1,"weight":1}],"edges":[]}`,
		"cycle":        `{"tasks":[{"id":0,"weight":1},{"id":1,"weight":1}],"edges":[{"from":0,"to":1,"data":1},{"from":1,"to":0,"data":1}]}`,
		"bad edge ref": `{"tasks":[{"id":0,"weight":1}],"edges":[{"from":0,"to":9,"data":1}]}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			var g Graph
			if err := json.Unmarshal([]byte(in), &g); err == nil {
				t.Fatal("Unmarshal succeeded, want error")
			}
		})
	}
}

func TestWriteDOT(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "0 -> 1", "2 -> 3", `label="a`} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTEscapes(t *testing.T) {
	b := NewBuilder("")
	b.AddTask(`quo"te`, 1)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	if !strings.Contains(buf.String(), `quo\"te`) {
		t.Fatalf("quote not escaped:\n%s", buf.String())
	}
}
