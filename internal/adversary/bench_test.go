package adversary

import (
	"context"
	"testing"

	"dagsched/internal/algo"
	"dagsched/internal/algo/listsched"
)

// BenchmarkPopulationEval guards the throughput of the bounded parallel
// population evaluator — the hot loop of every GA adversary run.
func BenchmarkPopulationEval(b *testing.B) {
	base := Spec{N: 40, Procs: 4, CCR: 1, Beta: 0.5, BaseSeed: 11}
	in, err := base.Decode()
	if err != nil {
		b.Fatal(err)
	}
	base.materialize(in.G.NumEdges())
	cfg := Config{Attacker: listsched.HEFT{}, Victim: listsched.CPOP{}}
	if err := cfg.defaults(); err != nil {
		b.Fatal(err)
	}
	const popSize = 16
	pop := make([]Spec, popSize)
	for i := range pop {
		pop[i] = base.clone()
		pop[i].BaseSeed = int64(i)
	}
	e := &evaluator{ctx: context.Background(), cfg: &cfg}
	group := algo.NewTrialGroup(popSize, algo.ParallelTrialThreshold)
	defer group.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fits, err := e.evalPop(group, pop)
		if err != nil {
			b.Fatal(err)
		}
		if len(fits) != popSize {
			b.Fatalf("got %d fitnesses", len(fits))
		}
	}
}
