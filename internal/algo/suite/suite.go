// Package suite assembles every scheduling algorithm in the repository
// behind one registry, the single place the CLI tools, experiments and
// examples look algorithms up by name.
package suite

import (
	"fmt"
	"sort"

	"dagsched/internal/algo"
	"dagsched/internal/algo/cluster"
	"dagsched/internal/algo/contention"
	"dagsched/internal/algo/dup"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/algo/search"
	"dagsched/internal/core"
)

// All returns every heuristic (the exact BnB scheduler is excluded: it is
// exponential and exposed separately via package exact).
func All() []algo.Algorithm {
	return []algo.Algorithm{
		core.New(),
		core.NoDuplication(),
		core.NoLookahead(),
		core.RankOnly(),
		listsched.HEFT{},
		listsched.CPOP{},
		listsched.DLS{},
		listsched.HCPT{},
		listsched.PETS{},
		listsched.LMT{},
		listsched.MCP{},
		listsched.ETF{},
		listsched.HLFET{},
		listsched.ISH{},
		dup.DSH{},
		dup.BTDH{},
		cluster.DSC{},
		contention.CHEFT{},
		// ILS through the same shared contention layer as C-HEFT: the
		// whole duplication/lookahead machinery runs against one-port
		// reservations, journaled and rolled back per speculative trial.
		algo.CommAware{Inner: core.New(), DisplayName: "C-ILS"},
	}
}

// Search returns the guided-random-search schedulers. They are kept out
// of All() because their cost per schedule is orders of magnitude above
// the list heuristics; experiment E15 compares them explicitly.
func Search() []algo.Algorithm {
	return []algo.Algorithm{
		search.HillClimb{},
		search.Anneal{},
		search.Genetic{},
	}
}

// Heterogeneous returns the algorithms conventionally compared on
// heterogeneous systems (the E1–E9 lineup).
func Heterogeneous() []algo.Algorithm {
	return []algo.Algorithm{
		core.New(),
		listsched.HEFT{},
		listsched.CPOP{},
		listsched.DLS{},
		dup.DSH{},
		dup.BTDH{},
	}
}

// Homogeneous returns the algorithms conventionally compared on
// homogeneous systems (the E10 lineup).
func Homogeneous() []algo.Algorithm {
	return []algo.Algorithm{
		core.New(),
		listsched.MCP{},
		listsched.ETF{},
		listsched.HLFET{},
		listsched.ISH{},
		dup.DSH{},
		dup.BTDH{},
		cluster.DSC{},
	}
}

// Ablation returns the four ILS variants plus HEFT, the E11 lineup.
func Ablation() []algo.Algorithm {
	return []algo.Algorithm{
		core.New(),
		core.NoDuplication(),
		core.NoLookahead(),
		core.RankOnly(),
		listsched.HEFT{},
	}
}

// ByName looks an algorithm up by its display name (case-sensitive),
// searching the heuristics and the search-based schedulers.
func ByName(name string) (algo.Algorithm, error) {
	for _, a := range append(All(), Search()...) {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("suite: unknown algorithm %q (known: %v)", name, Names())
}

// Names returns the sorted display names of every registered algorithm,
// including the search-based schedulers.
func Names() []string {
	var names []string
	for _, a := range append(All(), Search()...) {
		names = append(names, a.Name())
	}
	sort.Strings(names)
	return names
}
