package sched

import (
	"encoding/json"
	"fmt"
	"io"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
)

// instanceJSON is the stable on-disk form of a full problem instance:
// graph, system and cost matrix, sufficient to reproduce any experiment
// row bit-for-bit without the generator seed.
type instanceJSON struct {
	Graph   *dag.Graph  `json:"graph"`
	System  systemJSON  `json:"system"`
	Costs   [][]float64 `json:"costs"`
	Version int         `json:"version"`
}

type systemJSON struct {
	Speeds  []float64   `json:"speeds"`
	Startup [][]float64 `json:"startup"`
	InvRate [][]float64 `json:"invRate"`
}

// WriteJSON serializes the instance (graph, processors, link matrices and
// the full cost matrix) as indented JSON.
func (in *Instance) WriteJSON(w io.Writer) error {
	p := in.Sys.Len()
	sj := systemJSON{
		Speeds:  make([]float64, p),
		Startup: make([][]float64, p),
		InvRate: make([][]float64, p),
	}
	for i := 0; i < p; i++ {
		sj.Speeds[i] = in.Sys.Speed(i)
		sj.Startup[i] = make([]float64, p)
		sj.InvRate[i] = make([]float64, p)
		for j := 0; j < p; j++ {
			if i == j {
				continue
			}
			sj.Startup[i][j] = in.Sys.CommCost(i, j, 0)
			sj.InvRate[i][j] = in.Sys.CommCost(i, j, 1) - sj.Startup[i][j]
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(instanceJSON{Graph: in.G, System: sj, Costs: in.W, Version: 1})
}

// ReadInstanceJSON reads an instance written by WriteJSON, re-validating
// every component.
func ReadInstanceJSON(r io.Reader) (*Instance, error) {
	var ij instanceJSON
	if err := json.NewDecoder(r).Decode(&ij); err != nil {
		return nil, fmt.Errorf("sched: decoding instance: %w", err)
	}
	if ij.Graph == nil {
		return nil, fmt.Errorf("sched: instance missing graph")
	}
	sys, err := platform.New(platform.Config{
		Speeds:        ij.System.Speeds,
		StartupMatrix: ij.System.Startup,
		InvRateMatrix: ij.System.InvRate,
	})
	if err != nil {
		return nil, err
	}
	return NewInstance(ij.Graph, sys, ij.Costs)
}
