package adversary

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dagsched/internal/sched"
)

// Fixture records one adversarially-found instance: the genome, the
// search that found it, the observed gap, and the serialized instance
// file it decodes to. Fixtures live under testdata/adversarial/ and are
// permanent stress cases for the golden suite.
type Fixture struct {
	// Name is the fixture's identifier and file stem.
	Name string `json:"name"`
	// Attacker and Victim name the registry algorithms of the search.
	Attacker string `json:"attacker"`
	Victim   string `json:"victim"`
	// Method and Seed reproduce the search.
	Method string `json:"method"`
	Seed   int64  `json:"seed"`
	// Ratio is victim/attacker makespan on the instance; BaseRatio the
	// same on the unperturbed base spec.
	Ratio     float64 `json:"ratio"`
	BaseRatio float64 `json:"baseRatio"`
	// AttackerMakespan and VictimMakespan pin the two makespans.
	AttackerMakespan float64 `json:"attackerMakespan"`
	VictimMakespan   float64 `json:"victimMakespan"`
	// InstanceDigest pins the serialized instance bytes.
	InstanceDigest string `json:"instanceDigest"`
	// File is the instance JSON, relative to the manifest directory.
	File string `json:"file"`
	// Spec is the genome that decodes to the instance.
	Spec Spec `json:"spec"`
}

// Manifest indexes a fixture directory.
type Manifest struct {
	Version  int       `json:"version"`
	Fixtures []Fixture `json:"fixtures"`
}

// manifestName is the index file inside a fixture directory.
const manifestName = "manifest.json"

// Digest returns the hex SHA-256 of the instance's canonical JSON
// serialization — the identity used by determinism and drift tests.
func Digest(in *sched.Instance) (string, error) {
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// ReadManifest loads dir/manifest.json.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("adversary: reading manifest: %w", err)
	}
	return &m, nil
}

// WriteManifest writes the manifest (fixtures sorted by name) to
// dir/manifest.json.
func (m *Manifest) Write(dir string) error {
	sort.Slice(m.Fixtures, func(i, j int) bool { return m.Fixtures[i].Name < m.Fixtures[j].Name })
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestName), append(data, '\n'), 0o644)
}

// Load reads and parses the fixture's instance file, verifying the
// pinned digest so silent corruption of checked-in fixtures is caught.
func (f *Fixture) Load(dir string) (*sched.Instance, error) {
	data, err := os.ReadFile(filepath.Join(dir, f.File))
	if err != nil {
		return nil, err
	}
	in, err := sched.ReadInstanceJSON(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("adversary: fixture %s: %w", f.Name, err)
	}
	d, err := Digest(in)
	if err != nil {
		return nil, err
	}
	if d != f.InstanceDigest {
		return nil, fmt.Errorf("adversary: fixture %s: instance digest %s does not match pinned %s", f.Name, d, f.InstanceDigest)
	}
	return in, nil
}

// SaveFixture serializes a search result into dir as name.json and
// returns the fixture record (not yet in any manifest).
func SaveFixture(dir, name string, base Spec, cfg Config, res *Result) (*Fixture, error) {
	if res.Instance == nil {
		return nil, fmt.Errorf("adversary: result has no instance")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := res.Instance.WriteJSON(&buf); err != nil {
		return nil, err
	}
	file := name + ".json"
	if err := os.WriteFile(filepath.Join(dir, file), buf.Bytes(), 0o644); err != nil {
		return nil, err
	}
	sum := sha256.Sum256(buf.Bytes())
	return &Fixture{
		Name:             name,
		Attacker:         cfg.Attacker.Name(),
		Victim:           cfg.Victim.Name(),
		Method:           cfg.Method,
		Seed:             cfg.Seed,
		Ratio:            res.Ratio,
		BaseRatio:        res.BaseRatio,
		AttackerMakespan: res.AttackerMakespan,
		VictimMakespan:   res.VictimMakespan,
		InstanceDigest:   hex.EncodeToString(sum[:]),
		File:             file,
		Spec:             res.Best,
	}, nil
}
