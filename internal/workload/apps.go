package workload

import (
	"fmt"
	"math"

	"dagsched/internal/dag"
)

// GaussianElimination returns the classic Gaussian-elimination task graph
// for an m×m matrix (m >= 2), the application DAG used by the HEFT paper
// and most of its successors. For every elimination step k there is one
// pivot task T(k) and, for every column j > k, one update task T(k,j):
//
//	T(k)   -> T(k,j)       (the pivot row is broadcast to all updates)
//	T(k,k+1) -> T(k+1)     (the next pivot waits for its column's update)
//	T(k,j) -> T(k+1,j)     (updates chain down the columns)
//
// giving (m² + m − 2)/2 tasks. Task weights shrink with the remaining
// submatrix: pivot work ∝ (m−k), update work ∝ 2(m−k); edge data ∝ the
// transferred row fragment (m−k).
func GaussianElimination(m int) (*dag.Graph, error) {
	if m < 2 {
		return nil, fmt.Errorf("workload: gaussian elimination needs m >= 2, got %d", m)
	}
	b := dag.NewBuilder(fmt.Sprintf("gauss-m%d", m))
	pivot := make([]dag.TaskID, m) // pivot[k], valid for k = 1..m-1
	update := make([]map[int]dag.TaskID, m)
	for k := 1; k < m; k++ {
		rem := float64(m - k)
		pivot[k] = b.AddTask(fmt.Sprintf("piv%d", k), rem)
		update[k] = make(map[int]dag.TaskID)
		for j := k + 1; j <= m; j++ {
			update[k][j] = b.AddTask(fmt.Sprintf("upd%d,%d", k, j), 2*rem)
		}
	}
	for k := 1; k < m; k++ {
		rem := float64(m - k)
		for j := k + 1; j <= m; j++ {
			b.AddEdge(pivot[k], update[k][j], rem)
		}
		if k+1 < m {
			b.AddEdge(update[k][k+1], pivot[k+1], rem)
			for j := k + 2; j <= m; j++ {
				b.AddEdge(update[k][j], update[k+1][j], rem)
			}
		}
	}
	return b.Build()
}

// FFT returns the n-point fast-Fourier-transform butterfly DAG (n a power
// of two): log2(n)+1 levels of n tasks, where task (l, i) for l >= 1
// depends on tasks (l−1, i) and (l−1, i XOR 2^(l−1)). All tasks carry unit
// butterfly work and all edges carry unit data.
func FFT(n int) (*dag.Graph, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("workload: FFT needs a power-of-two point count >= 2, got %d", n)
	}
	stages := int(math.Log2(float64(n)))
	b := dag.NewBuilder(fmt.Sprintf("fft-%d", n))
	prev := make([]dag.TaskID, n)
	for i := 0; i < n; i++ {
		prev[i] = b.AddTask(fmt.Sprintf("in%d", i), 1)
	}
	for l := 1; l <= stages; l++ {
		cur := make([]dag.TaskID, n)
		for i := 0; i < n; i++ {
			cur[i] = b.AddTask(fmt.Sprintf("bf%d,%d", l, i), 1)
		}
		for i := 0; i < n; i++ {
			b.AddEdge(prev[i], cur[i], 1)
			b.AddEdge(prev[i^(1<<(l-1))], cur[i], 1)
		}
		prev = cur
	}
	return b.Build()
}

// Laplace returns the g×g wavefront task graph of a Laplace-equation
// sweep (Gauss–Seidel order): task (i,j) depends on (i−1,j) and (i,j−1).
// All tasks carry unit work, all edges unit data.
func Laplace(g int) (*dag.Graph, error) {
	if g < 1 {
		return nil, fmt.Errorf("workload: laplace needs grid >= 1, got %d", g)
	}
	b := dag.NewBuilder(fmt.Sprintf("laplace-%d", g))
	id := make([][]dag.TaskID, g)
	for i := 0; i < g; i++ {
		id[i] = make([]dag.TaskID, g)
		for j := 0; j < g; j++ {
			id[i][j] = b.AddTask(fmt.Sprintf("c%d,%d", i, j), 1)
		}
	}
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			if i > 0 {
				b.AddEdge(id[i-1][j], id[i][j], 1)
			}
			if j > 0 {
				b.AddEdge(id[i][j-1], id[i][j], 1)
			}
		}
	}
	return b.Build()
}
