package algo

import (
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
)

func diamondInstance(t *testing.T) *sched.Instance {
	t.Helper()
	b := dag.NewBuilder("diamond")
	t0 := b.AddTask("a", 2)
	t1 := b.AddTask("b", 3)
	t2 := b.AddTask("c", 1)
	t3 := b.AddTask("d", 4)
	b.AddEdge(t0, t1, 1)
	b.AddEdge(t0, t2, 4)
	b.AddEdge(t1, t3, 2)
	b.AddEdge(t2, t3, 3)
	return sched.Consistent(b.MustBuild(), platform.Homogeneous(2, 0, 1))
}

func TestOrderDescPrecedence(t *testing.T) {
	in := diamondInstance(t)
	prio := []float64{5, 5, 5, 5} // all ties: must fall back to topo order
	order := OrderDescPrecedence(in.G, prio)
	pos := map[dag.TaskID]int{}
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range in.G.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("precedence violated on tie: %v", order)
		}
	}
	// With a priority that is monotone along edges (like upward ranks,
	// which strictly decrease towards exits), the order follows priority.
	prio = []float64{9, 5, 5, 1} // tie between 1 and 2 broken by topo pos
	order = OrderDescPrecedence(in.G, prio)
	want := []dag.TaskID{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestOrderAscPrecedence(t *testing.T) {
	in := diamondInstance(t)
	prio := []float64{0, 2, 1, 3}
	order := OrderAscPrecedence(in.G, prio)
	want := []dag.TaskID{0, 2, 1, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestReadyList(t *testing.T) {
	in := diamondInstance(t)
	rl := NewReadyList(in.G)
	if got := rl.Ready(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("initial ready = %v", got)
	}
	rl.Complete(0)
	if got := rl.Ready(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ready after 0 = %v", got)
	}
	rl.Complete(2)
	if got := rl.Ready(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("ready after 2 = %v", got)
	}
	rl.Complete(1)
	if got := rl.Ready(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("ready after 1 = %v", got)
	}
	rl.Complete(3)
	if !rl.Empty() {
		t.Fatal("not empty at end")
	}
}

func TestCriticalParent(t *testing.T) {
	in := diamondInstance(t)
	pl := sched.NewPlan(in)
	pl.Place(0, 0, 0) // finish 2
	pl.Place(1, 0, 2) // finish 5
	pl.Place(2, 1, 6) // finish 7 (data arrived at 6)
	// Task 3 on P0: arrival from 1 = 5 (local), from 2 = 7 + 3 = 10
	// (remote). Critical parent is 2.
	parent, arrival := CriticalParent(pl, 3, 0)
	if parent != 2 || arrival != 10 {
		t.Fatalf("CriticalParent = %d at %g, want 2 at 10", parent, arrival)
	}
	// On P1: arrival from 1 = 5+2 = 7 (remote), from 2 = 7 (local, so not
	// a duplication candidate). Critical parent is 1.
	parent, arrival = CriticalParent(pl, 3, 1)
	if parent != 1 || arrival != 7 {
		t.Fatalf("CriticalParent = %d at %g, want 1 at 7", parent, arrival)
	}
}

func TestCriticalParentNoneWhenAllLocal(t *testing.T) {
	in := diamondInstance(t)
	pl := sched.NewPlan(in)
	pl.Place(0, 0, 0)
	pl.Place(1, 0, 2)
	pl.Place(2, 0, 5)
	parent, _ := CriticalParent(pl, 3, 0)
	if parent != -1 {
		t.Fatalf("CriticalParent = %d, want -1 (all parents local)", parent)
	}
}

func TestTryDuplicationImproves(t *testing.T) {
	// Entry task A on P1; child B considered on P0 with a big edge.
	// Duplicating A onto P0 (cost 2) beats waiting for the data.
	b := dag.NewBuilder("dup")
	a := b.AddTask("A", 2)
	c := b.AddTask("B", 2)
	b.AddEdge(a, c, 10)
	g := b.MustBuild()
	in := sched.Consistent(g, platform.Homogeneous(2, 0, 1))
	pl := sched.NewPlan(in)
	pl.Place(a, 1, 0) // A on P1, finish 2; data reaches P0 at 12
	tx := pl.Begin()
	res := TryDuplication(tx, c, 0, 4)
	if res.Dups != 1 {
		t.Fatalf("Dups = %d, want 1", res.Dups)
	}
	// Duplicate A on P0 [0,2), B can start at 2.
	if res.Start != 2 {
		t.Fatalf("Start = %g, want 2", res.Start)
	}
	// Base plan untouched until commit.
	if len(pl.Copies(a)) != 1 {
		t.Fatal("TryDuplication mutated the base plan")
	}
	// Commit and validate.
	tx.Commit()
	if len(pl.Copies(a)) != 2 {
		t.Fatalf("Copies(a) after commit = %d, want 2", len(pl.Copies(a)))
	}
	pl.Place(c, 0, res.Start)
	if err := pl.Finalize("x").Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestTryDuplicationDeclinesWhenUseless(t *testing.T) {
	// Tiny edge: data arrives at 2.1 but a duplicate of A would also
	// finish at 2 — improvement 0.1; with duplication cost exceeding the
	// gain... make the duplicate strictly worse: give A a huge cost on P0.
	b := dag.NewBuilder("nodup")
	a := b.AddTask("A", 1)
	c := b.AddTask("B", 1)
	b.AddEdge(a, c, 1)
	g := b.MustBuild()
	w := [][]float64{{50, 1}, {1, 1}}
	in, err := sched.NewInstance(g, platform.Homogeneous(2, 0, 1), w)
	if err != nil {
		t.Fatal(err)
	}
	pl := sched.NewPlan(in)
	pl.Place(a, 1, 0) // finish 1, data reaches P0 at 2
	tx := pl.Begin()
	res := TryDuplication(tx, c, 0, 4)
	if res.Dups != 0 {
		t.Fatalf("Dups = %d, want 0 (duplicate costs 50)", res.Dups)
	}
	if res.Start != 2 {
		t.Fatalf("Start = %g, want 2", res.Start)
	}
	// The rejected duplicate was rolled back inside the transaction: even
	// committing it must leave the plan unchanged.
	tx.Commit()
	if len(pl.Copies(a)) != 1 || len(pl.OnProc(0)) != 0 {
		t.Fatal("rejected duplication leaked into the plan")
	}
}

func TestFuncAdapter(t *testing.T) {
	in := diamondInstance(t)
	f := Func{AlgName: "greedy", Fn: func(in *sched.Instance) (*sched.Schedule, error) {
		pl := sched.NewPlan(in)
		for _, v := range in.G.TopoOrder() {
			p, s, _ := pl.BestEFT(v, true)
			pl.Place(v, p, s)
		}
		return pl.Finalize("greedy"), nil
	}}
	if f.Name() != "greedy" {
		t.Fatalf("Name = %q", f.Name())
	}
	s, err := f.Schedule(in)
	if err != nil || s.Validate() != nil {
		t.Fatalf("Schedule: %v / %v", err, s.Validate())
	}
}
