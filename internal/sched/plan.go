package sched

import (
	"fmt"
	"math"
	"sort"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched/timeline"
)

// Plan is the mutable working state of a scheduling algorithm: a partial
// schedule supporting earliest-slot queries, insertion-based placement and
// task duplication. Algorithms build a Plan task by task and Finalize it
// into an immutable Schedule.
//
// Plan methods panic on algorithmic misuse (placing a task twice, querying
// the data-ready time of a task whose predecessor is unscheduled): these
// are programming errors in an algorithm, not runtime conditions a caller
// can handle.
type Plan struct {
	in     *Instance
	procs  [][]Assignment // per processor, sorted by Start
	byTask [][]Assignment // per task: all copies, primary first
	placed int            // number of tasks with a primary copy
	// blockedFrom[p] < +Inf marks processor p unavailable from that time
	// on (fail-stop support); FindSlot never places work beyond it.
	blockedFrom []float64
	// gaps[p] indexes the idle gaps of processor p for O(log k)
	// earliest-fit queries. An index degrades (and FindSlot falls back to
	// the linear reference scan) if a placement ever straddles occupied
	// intervals; correctness never depends on it.
	gaps []*timeline.GapIndex
	// epoch counts mutations; Txn.Commit refuses to apply a transaction
	// begun against an older epoch (see txn.go).
	epoch uint64
	// procEpoch[p] counts mutations of processor p's timeline (inserts,
	// blocks and committed transactions). Txn.Reset uses it to tell which
	// gap-index snapshots are still exact and can be reused without
	// re-copying treap nodes.
	procEpoch []uint64
	// comm holds the contended-network reservation state when the
	// instance's communication model has one (nil on the default
	// contention-free path, leaving every hot path untouched). DataReady
	// then answers contention-aware earliest arrivals, and Place/PlaceDup
	// commit the chosen transfers' reservations.
	comm platform.CommState
	// commEpoch counts committed comm reservations the way procEpoch
	// counts timeline mutations; Txn.Reset uses it to tell whether a
	// cloned comm state still mirrors the base.
	commEpoch uint64
}

// NewPlan returns an empty plan for the instance. The per-task copy lists
// are carved out of one flat arena — each task gets a zero-length slot of
// capacity one, so placing the primary copy of every task costs zero heap
// allocations; only duplicated tasks spill their list onto the heap when
// append outgrows the slot.
func NewPlan(in *Instance) *Plan {
	pl := &Plan{
		in:          in,
		procs:       make([][]Assignment, in.P()),
		byTask:      make([][]Assignment, in.N()),
		blockedFrom: make([]float64, in.P()),
		gaps:        make([]*timeline.GapIndex, in.P()),
		procEpoch:   make([]uint64, in.P()),
	}
	arena := make([]Assignment, in.N())
	for i := range pl.byTask {
		pl.byTask[i] = arena[i : i : i+1]
	}
	// Pre-size each processor timeline for an even spread of the tasks:
	// insert then grows each slice O(1) amortized without the doubling
	// copies that dominate allocation churn on the large tiers.
	est := in.N()/in.P() + 8
	for p := range pl.blockedFrom {
		pl.procs[p] = make([]Assignment, 0, est)
		pl.blockedFrom[p] = math.Inf(1)
		pl.gaps[p] = timeline.New(slotEps)
	}
	if in.comm != nil {
		pl.comm = in.comm.NewState()
	}
	return pl
}

// CommState exposes the plan's network reservation state (nil under the
// contention-free model); tests and PortSchedule-style reporting read its
// Busy totals.
func (pl *Plan) CommState() platform.CommState { return pl.comm }

// BlockProc marks processor p unavailable from the given time onward:
// FindSlot (and therefore every EFT query) will never return a slot whose
// interval extends past the block. Placements already on p are untouched.
// Blocking is used by failure-repair scheduling; it panics on a second,
// earlier block only if it would invalidate nothing — re-blocking simply
// keeps the earliest time.
func (pl *Plan) BlockProc(p int, from float64) {
	if from < pl.blockedFrom[p] {
		pl.blockedFrom[p] = from
		pl.epoch++
		pl.procEpoch[p]++
	}
}

// Blocked returns the time from which processor p is unavailable
// (+Inf when never blocked).
func (pl *Plan) Blocked(p int) float64 { return pl.blockedFrom[p] }

// Instance returns the problem being scheduled.
func (pl *Plan) Instance() *Instance { return pl.in }

// Scheduled reports whether task i has its primary copy placed.
func (pl *Plan) Scheduled(i dag.TaskID) bool { return len(pl.byTask[i]) > 0 }

// Done reports whether every task has been placed.
func (pl *Plan) Done() bool { return pl.placed == pl.in.N() }

// Copies returns all placed copies of task i (primary first). The slice
// must not be modified.
func (pl *Plan) Copies(i dag.TaskID) []Assignment { return pl.byTask[i] }

// Primary returns the primary copy of task i; it panics if unscheduled.
func (pl *Plan) Primary(i dag.TaskID) Assignment {
	if len(pl.byTask[i]) == 0 {
		panic(fmt.Sprintf("sched: task %d not scheduled", i))
	}
	return pl.byTask[i][0]
}

// OnProc returns the assignments on processor p sorted by start. The slice
// must not be modified.
func (pl *Plan) OnProc(p int) []Assignment { return pl.procs[p] }

// ProcReady returns the finish time of the last assignment on processor p
// (0 when idle) — the non-insertion availability time.
func (pl *Plan) ProcReady(p int) float64 {
	t := pl.procs[p]
	if len(t) == 0 {
		return 0
	}
	return t[len(t)-1].Finish
}

// DataReady returns the earliest time all input data of task i is
// available on processor p, taking the best copy of every predecessor.
// Entry tasks are ready at time 0. It panics if a predecessor has no copy.
// Under a contended communication model the arrival of each transfer
// accounts for the network resources already reserved by placed tasks
// (without reserving anything itself — Place commits reservations).
func (pl *Plan) DataReady(i dag.TaskID, p int) float64 {
	if pl.comm != nil {
		return commReady(pl, pl.comm, i, p, false)
	}
	ready := 0.0
	for _, pe := range pl.in.G.Pred(i) {
		copies := pl.byTask[pe.To]
		if len(copies) == 0 {
			panic(fmt.Sprintf("sched: task %d scheduled before predecessor %d", i, pe.To))
		}
		arrival := math.Inf(1)
		for _, c := range copies {
			if t := c.Finish + pl.in.CommCost(c.Proc, p, pe.Data); t < arrival {
				arrival = t
			}
		}
		if arrival > ready {
			ready = arrival
		}
	}
	return ready
}

// commReady is the contended counterpart of the DataReady loop, shared by
// Plan and Txn: the earliest time all input data of task i is available
// on processor p, with every inter-processor transfer queried against the
// reservation state st. Per predecessor it takes the copy with the
// earliest contended arrival; local copies and zero-cost transfers arrive
// at the copy's finish. With reserve set, the winning transfer of each
// predecessor is committed before the next predecessor is examined, so
// the task's own inputs serialize correctly too.
func commReady(v View, st platform.CommState, i dag.TaskID, p int, reserve bool) float64 {
	in := v.Instance()
	ready := 0.0
	for _, pe := range in.G.Pred(i) {
		copies := v.Copies(pe.To)
		if len(copies) == 0 {
			panic(fmt.Sprintf("sched: task %d scheduled before predecessor %d", i, pe.To))
		}
		best := math.Inf(1)
		bestProc := -1
		bestStart, bestDur := 0.0, 0.0
		for _, c := range copies {
			if c.Proc == p {
				if c.Finish < best {
					best, bestProc = c.Finish, p
				}
				continue
			}
			dur := in.CommCost(c.Proc, p, pe.Data)
			if dur == 0 {
				if c.Finish < best {
					best, bestProc = c.Finish, p
				}
				continue
			}
			start := st.TransferStart(c.Proc, p, c.Finish, dur)
			if start+dur < best {
				best, bestProc, bestStart, bestDur = start+dur, c.Proc, start, dur
			}
		}
		if reserve && bestProc != -1 && bestProc != p && bestDur > 0 {
			st.Reserve(bestProc, p, bestStart, bestDur)
		}
		if best > ready {
			ready = best
		}
	}
	return ready
}

// FindSlot returns the earliest start time >= ready at which an interval
// of length dur fits on processor p. With insertion enabled it scans idle
// gaps between existing assignments; otherwise it appends after the last
// assignment. When the processor is blocked (BlockProc) and the interval
// would extend past the block, it returns +Inf.
func (pl *Plan) FindSlot(p int, ready, dur float64, insertion bool) float64 {
	start := pl.findSlotUnbounded(p, ready, dur, insertion)
	if start+dur > pl.blockedFrom[p]+slotEps {
		return math.Inf(1)
	}
	return start
}

func (pl *Plan) findSlotUnbounded(p int, ready, dur float64, insertion bool) float64 {
	if !insertion {
		return math.Max(ready, pl.ProcReady(p))
	}
	if gi := pl.gaps[p]; gi.OK() {
		// Tail fast path: while the index is intact every placement landed
		// in a single idle gap, so assignments never overlap and the
		// last-by-start one has the maximum finish — the start of the
		// unbounded tail gap. A query at or past it lands in that gap and
		// no fit can start earlier than ready, so the answer is exactly
		// ready (identical to what the index returns) without a tree walk.
		if t := pl.procs[p]; len(t) == 0 {
			if ready >= 0 {
				return ready
			}
		} else if ready >= t[len(t)-1].Finish {
			return ready
		}
		if start, ok := gi.EarliestFit(ready, dur); ok {
			return start
		}
	}
	// Degraded gap index (a placement straddled occupied intervals):
	// answer with the linear reference scan.
	prevFinish := 0.0
	for _, a := range pl.procs[p] {
		start := math.Max(ready, prevFinish)
		if start+dur <= a.Start+slotEps {
			return start
		}
		if a.Finish > prevFinish {
			prevFinish = a.Finish
		}
	}
	return math.Max(ready, prevFinish)
}

// slotEps absorbs floating-point dust when deciding whether an interval
// fits a gap exactly.
const slotEps = 1e-9

// EFTOn returns the insertion-policy earliest start and finish of task i
// on processor p given the current partial schedule.
func (pl *Plan) EFTOn(i dag.TaskID, p int, insertion bool) (start, finish float64) {
	ready := pl.DataReady(i, p)
	dur := pl.in.Cost(i, p)
	start = pl.FindSlot(p, ready, dur, insertion)
	return start, start + dur
}

// BestEFT returns the processor minimizing the earliest finish time of
// task i, with its start and finish. Ties break toward the smaller
// processor id. When no processor has a feasible slot (every processor
// blocked via BlockProc), it returns start = finish = +Inf with proc 0;
// callers that schedule against blockable plans must check
// math.IsInf(finish, 1) before placing.
//
// From TreeSelectThreshold processors on, the query runs over the
// bound-pruned selection heap (see proctree.go), which returns the same
// (proc, start, finish) bit for bit while skipping exact EFT evaluations
// on processors whose lower bound already loses.
func (pl *Plan) BestEFT(i dag.TaskID, insertion bool) (proc int, start, finish float64) {
	if ForceTreeSelect || pl.in.P() >= TreeSelectThreshold {
		return pl.bestEFTTree(i, insertion)
	}
	// Gather each predecessor's (finish, proc, data) once instead of
	// re-walking adjacency and copy lists inside DataReady for every
	// processor. Stack arrays keep the scan allocation- and race-free;
	// duplicated predecessors, wide fan-in and contended models take the
	// general path. The per-arrival expression and the pred/copy
	// iteration order match DataReady exactly, so readiness times are
	// bit-identical.
	var finA [16]float64
	var dataA [16]float64
	var procA [16]int32
	gathered := -1
	if pl.comm == nil {
		preds := pl.in.G.Pred(i)
		if len(preds) <= len(finA) {
			gathered = len(preds)
			for k, pe := range preds {
				copies := pl.byTask[pe.To]
				if len(copies) != 1 {
					if len(copies) == 0 {
						panic(fmt.Sprintf("sched: task %d scheduled before predecessor %d", i, pe.To))
					}
					gathered = -1
					break
				}
				finA[k] = copies[0].Finish
				procA[k] = int32(copies[0].Proc)
				dataA[k] = pe.Data
			}
		}
	}
	start, finish = math.Inf(1), math.Inf(1)
	for p := 0; p < pl.in.P(); p++ {
		var ready float64
		if gathered >= 0 {
			for k := 0; k < gathered; k++ {
				if t := finA[k] + pl.in.CommCost(int(procA[k]), p, dataA[k]); t > ready {
					ready = t
				}
			}
		} else {
			ready = pl.DataReady(i, p)
		}
		dur := pl.in.Cost(i, p)
		// finish on p is at least ready+dur (slots never start before
		// ready, and float addition is monotone), so a processor whose
		// floor already loses — or ties, which keep the earlier, smaller
		// id — skips the slot search entirely.
		if ready+dur >= finish {
			continue
		}
		s := pl.FindSlot(p, ready, dur, insertion)
		if f := s + dur; f < finish {
			proc, start, finish = p, s, f
		}
	}
	return proc, start, finish
}

// Place assigns the primary copy of task i to processor p at the given
// start time. It does not re-derive start: algorithms decide placement,
// the plan records it. It panics if the task is already scheduled.
//
// Under a contended communication model Place first commits the port
// reservations of the task's input transfers and re-derives the start —
// never earlier than the caller's — against the committed network state,
// exactly as the caller's estimate did against the uncommitted one.
func (pl *Plan) Place(i dag.TaskID, p int, start float64) Assignment {
	if pl.Scheduled(i) {
		panic(fmt.Sprintf("sched: task %d placed twice", i))
	}
	if pl.comm != nil {
		start = pl.commitComm(i, p, start)
	}
	a := Assignment{Task: i, Proc: p, Start: start, Finish: start + pl.in.Cost(i, p)}
	pl.insert(a)
	pl.placed++
	return a
}

// PlaceDup adds a duplicate copy of task i on processor p. The task's
// primary copy must already exist. Under a contended model the copy's
// input transfers are reserved like a primary's.
func (pl *Plan) PlaceDup(i dag.TaskID, p int, start float64) Assignment {
	if !pl.Scheduled(i) {
		panic(fmt.Sprintf("sched: duplicating unscheduled task %d", i))
	}
	if pl.comm != nil {
		start = pl.commitComm(i, p, start)
	}
	a := Assignment{Task: i, Proc: p, Start: start, Finish: start + pl.in.Cost(i, p), Dup: true}
	pl.insert(a)
	return a
}

// commitComm reserves task i's input transfers toward processor p and
// returns the placement start re-derived against the reserved network:
// the earliest slot at or after both the caller's start and the committed
// data-ready time.
func (pl *Plan) commitComm(i dag.TaskID, p int, start float64) float64 {
	m := pl.comm.Mark()
	ready := commReady(pl, pl.comm, i, p, true)
	if start > ready {
		ready = start
	}
	if pl.comm.Mark() != m {
		pl.commEpoch++
	}
	return pl.FindSlot(p, ready, pl.in.Cost(i, p), true)
}

func (pl *Plan) insert(a Assignment) {
	pl.epoch++
	pl.procEpoch[a.Proc]++
	t := pl.procs[a.Proc]
	k := sort.Search(len(t), func(i int) bool { return t[i].Start > a.Start })
	t = append(t, Assignment{})
	copy(t[k+1:], t[k:])
	t[k] = a
	pl.procs[a.Proc] = t
	pl.gaps[a.Proc].Occupy(a.Start, a.Finish)
	switch {
	case a.Dup:
		pl.byTask[a.Task] = append(pl.byTask[a.Task], a)
	case len(pl.byTask[a.Task]) == 0:
		// The common case: the primary is the first copy and lands in the
		// task's arena slot without allocating.
		pl.byTask[a.Task] = append(pl.byTask[a.Task], a)
	default:
		pl.byTask[a.Task] = append([]Assignment{a}, pl.byTask[a.Task]...)
	}
}

// Makespan returns the latest finish time of any primary copy placed so
// far.
func (pl *Plan) Makespan() float64 {
	ms := 0.0
	for _, copies := range pl.byTask {
		if len(copies) > 0 && copies[0].Finish > ms {
			ms = copies[0].Finish
		}
	}
	return ms
}

// Clone returns a deep copy of the plan; used by duplication heuristics to
// evaluate tentative placements.
func (pl *Plan) Clone() *Plan {
	cp := &Plan{
		in:          pl.in,
		procs:       make([][]Assignment, len(pl.procs)),
		byTask:      make([][]Assignment, len(pl.byTask)),
		placed:      pl.placed,
		blockedFrom: append([]float64(nil), pl.blockedFrom...),
		gaps:        make([]*timeline.GapIndex, len(pl.gaps)),
		procEpoch:   make([]uint64, len(pl.gaps)),
		commEpoch:   pl.commEpoch,
	}
	if pl.comm != nil {
		cp.comm = pl.comm.Clone()
	}
	for p := range pl.procs {
		cp.procs[p] = append([]Assignment(nil), pl.procs[p]...)
		cp.gaps[p] = pl.gaps[p].Clone()
	}
	// Rebuild the copy lists on a fresh arena: tasks with at most one copy
	// (nearly all of them) share it, capacity-clamped so a later append
	// spills to the heap instead of clobbering the neighbouring slot; only
	// duplicated tasks need their own heap slice.
	arena := make([]Assignment, pl.in.N())
	for i := range pl.byTask {
		src := pl.byTask[i]
		switch len(src) {
		case 0:
			cp.byTask[i] = arena[i : i : i+1]
		case 1:
			arena[i] = src[0]
			cp.byTask[i] = arena[i : i+1 : i+1]
		default:
			cp.byTask[i] = append([]Assignment(nil), src...)
		}
	}
	return cp
}

// Finalize converts the plan into an immutable Schedule attributed to the
// named algorithm. It panics if any task is unscheduled: algorithms must
// be total.
func (pl *Plan) Finalize(algorithm string) *Schedule {
	if !pl.Done() {
		panic(fmt.Sprintf("sched: finalize with %d of %d tasks scheduled", pl.placed, pl.in.N()))
	}
	return buildSchedule(pl.in, algorithm, pl.procs)
}
