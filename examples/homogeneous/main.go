// Homogeneous multiprocessor study: schedule an FFT butterfly DAG on an
// identical-processor machine, comparing ILS against the classic
// homogeneous heuristics (MCP, ETF, HLFET, ISH, DSH, BTDH, DSC) and the
// exact branch-and-bound optimum on a downscaled instance.
//
//	go run ./examples/homogeneous
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"dagsched"
	"dagsched/internal/algo/exact"
)

func main() {
	g, err := dagsched.FFTDAG(16)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	// Beta 0 = identical processors: the homogeneous case of the paper.
	in, err := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 4, CCR: 2, Beta: 0}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s on 4 identical processors, CCR 2\n\n", g.Name())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tmakespan\tNSL\tspeedup\tdups")
	for _, a := range dagsched.HomogeneousLineup() {
		res, err := dagsched.Evaluate(a, in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%.3f\t%.3f\t%d\n",
			res.Algorithm, res.Makespan, res.SLR, res.Speedup, res.Duplicates)
	}
	tw.Flush()

	// On a tiny FFT the branch-and-bound optimum is reachable: measure
	// how far the heuristics are from it.
	small, err := dagsched.FFTDAG(4)
	if err != nil {
		log.Fatal(err)
	}
	rng = rand.New(rand.NewSource(7))
	tiny, err := dagsched.MakeInstance(small, dagsched.WorkloadConfig{Procs: 2, CCR: 1, Beta: 0}, rng)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := dagsched.Optimal(tiny)
	if err != nil && !errors.Is(err, exact.ErrBudget) {
		log.Fatal(err)
	}
	fmt.Printf("\n12-task FFT, 2 processors: optimum %.4g\n", opt.Makespan())
	for _, name := range []string{"ILS", "MCP", "ETF", "HLFET"} {
		a, err := dagsched.AlgorithmByName(name)
		if err != nil {
			log.Fatal(err)
		}
		s, err := a.Schedule(tiny)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %.4g (%.1f%% above optimal)\n",
			name, s.Makespan(), 100*(s.Makespan()/opt.Makespan()-1))
	}
}
