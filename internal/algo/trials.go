package algo

import (
	"runtime"
	"sync"
)

// ParallelTrialThreshold is the task count from which the duplication
// schedulers evaluate their per-processor trials concurrently. Below it
// the round-trip cost of handing P closures to a worker group exceeds the
// trial work itself. Tests lower it (together with ForceTrialWorkers) to
// exercise the concurrent path on small instances under -race.
var ParallelTrialThreshold = 192

// ForceTrialWorkers, when positive, pins the worker count of every new
// TrialGroup regardless of GOMAXPROCS and ParallelTrialThreshold. It
// exists for tests that must drive the concurrent evaluator on small
// instances (and on single-CPU machines, where concurrency still shakes
// out sharing bugs under the race detector even without parallelism).
var ForceTrialWorkers = 0

// TrialGroup is a bounded worker group for evaluating the P per-processor
// placement trials of one scheduling step concurrently. Transactions make
// the trials independent — each works against its own sched.Txn and the
// base plan is read-only until the round's winner commits — so the group
// needs no locking beyond the round barrier.
//
// The workers persist across rounds (one group per Schedule call), so the
// per-round cost is P channel hops, not P goroutine spawns. A group whose
// worker count resolves to one runs trials inline; Run is always a
// barrier: it returns only when every trial of the round finished.
type TrialGroup struct {
	workers int
	fn      func(int)
	idx     chan int
	wg      sync.WaitGroup
}

// NewTrialGroup sizes a group for an instance with the given processor
// and task counts. The caller must Close it.
func NewTrialGroup(procs, tasks int) *TrialGroup {
	w := ForceTrialWorkers
	if w <= 0 {
		w = procs
		if mp := runtime.GOMAXPROCS(0); mp < w {
			w = mp
		}
		if w < 2 || tasks < ParallelTrialThreshold {
			return &TrialGroup{}
		}
	}
	g := &TrialGroup{workers: w, idx: make(chan int, procs)}
	for i := 0; i < w; i++ {
		go func() {
			for p := range g.idx {
				g.fn(p)
				g.wg.Done()
			}
		}()
	}
	return g
}

// Run evaluates fn(i) for every i in [0, n) and returns when all calls
// finished. fn must confine its writes to per-i state (its own Txn and
// result slot). Run is not reentrant.
func (g *TrialGroup) Run(n int, fn func(int)) {
	if g.workers == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	g.fn = fn
	g.wg.Add(n)
	for i := 0; i < n; i++ {
		g.idx <- i
	}
	g.wg.Wait()
}

// Close stops the workers. The group must not be used after.
func (g *TrialGroup) Close() {
	if g.idx != nil {
		close(g.idx)
	}
}
