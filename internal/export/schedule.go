package export

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// scheduleJSON is the stable on-disk form of a schedule.
type scheduleJSON struct {
	Algorithm   string           `json:"algorithm"`
	Makespan    float64          `json:"makespan"`
	Processors  int              `json:"processors"`
	Tasks       int              `json:"tasks"`
	Duplicates  int              `json:"duplicates"`
	Assignments []assignmentJSON `json:"assignments"`
}

type assignmentJSON struct {
	Task   int     `json:"task"`
	Name   string  `json:"name,omitempty"`
	Proc   int     `json:"proc"`
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"`
	Dup    bool    `json:"dup,omitempty"`
}

// WriteScheduleJSON writes the schedule as indented JSON with one record
// per task copy, ordered by (processor, start).
func WriteScheduleJSON(w io.Writer, s *sched.Schedule) error {
	in := s.Instance()
	out := scheduleJSON{
		Algorithm:  s.Algorithm(),
		Makespan:   s.Makespan(),
		Processors: in.P(),
		Tasks:      in.N(),
		Duplicates: s.NumDuplicates(),
	}
	for p := 0; p < in.P(); p++ {
		for _, a := range s.OnProc(p) {
			out.Assignments = append(out.Assignments, assignmentJSON{
				Task:   int(a.Task),
				Name:   in.G.Task(a.Task).Name,
				Proc:   a.Proc,
				Start:  a.Start,
				Finish: a.Finish,
				Dup:    a.Dup,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteChromeTrace writes the schedule in the Chrome trace-event format
// (load via chrome://tracing or https://ui.perfetto.dev). Each processor
// becomes a thread lane, each task copy a complete ("X") event; times are
// interpreted as microseconds.
func WriteChromeTrace(w io.Writer, s *sched.Schedule) error {
	in := s.Instance()
	type event struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args,omitempty"`
	}
	var events []event
	for p := 0; p < in.P(); p++ {
		for _, a := range s.OnProc(p) {
			cat := "task"
			if a.Dup {
				cat = "duplicate"
			}
			events = append(events, event{
				Name: in.G.Task(a.Task).Name,
				Cat:  cat,
				Ph:   "X",
				Ts:   a.Start,
				Dur:  a.Duration(),
				PID:  1,
				TID:  p,
				Args: map[string]string{
					"task": fmt.Sprintf("%d", a.Task),
					"dup":  fmt.Sprintf("%v", a.Dup),
				},
			})
		}
	}
	wrapper := struct {
		TraceEvents []event `json:"traceEvents"`
		DisplayUnit string  `json:"displayTimeUnit"`
	}{events, "ms"}
	data, err := json.MarshalIndent(wrapper, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadScheduleJSON reloads a schedule written by WriteScheduleJSON,
// rebinding it to the instance it was computed for (archives store
// placements, not the cost model). A placement on a processor the
// instance does not have is deliberately preserved so downstream
// consumers (Schedule.Validate, sim.Run) can report it as a typed error
// rather than this reader guessing about platform drift.
func ReadScheduleJSON(in *sched.Instance, r io.Reader) (*sched.Schedule, error) {
	var sj scheduleJSON
	if err := json.NewDecoder(r).Decode(&sj); err != nil {
		return nil, fmt.Errorf("export: decoding schedule: %w", err)
	}
	if sj.Algorithm == "" {
		return nil, fmt.Errorf("export: schedule archive has no algorithm name")
	}
	if sj.Tasks != 0 && sj.Tasks != in.N() {
		return nil, fmt.Errorf("export: archive has %d tasks, instance has %d", sj.Tasks, in.N())
	}
	as := make([]sched.Assignment, 0, len(sj.Assignments))
	for _, a := range sj.Assignments {
		as = append(as, sched.Assignment{
			Task: dag.TaskID(a.Task), Proc: a.Proc,
			Start: a.Start, Finish: a.Finish, Dup: a.Dup,
		})
	}
	return sched.FromAssignments(in, sj.Algorithm, as)
}

// ReadScheduleSummary decodes only the summary header fields of a
// schedule written by WriteScheduleJSON — algorithm, makespan, processor
// and copy counts — for tooling that lists archives without needing the
// original instance.
func ReadScheduleSummary(r io.Reader) (algorithm string, makespan float64, procs, copies int, err error) {
	var sj scheduleJSON
	if err = json.NewDecoder(r).Decode(&sj); err != nil {
		return "", 0, 0, 0, fmt.Errorf("export: decoding schedule: %w", err)
	}
	if sj.Algorithm == "" || sj.Makespan < 0 || sj.Processors <= 0 {
		return "", 0, 0, 0, fmt.Errorf("export: implausible schedule header %q/%g/%d", sj.Algorithm, sj.Makespan, sj.Processors)
	}
	return sj.Algorithm, sj.Makespan, sj.Processors, len(sj.Assignments), nil
}

// TraceContainsLane is a test helper: reports whether the serialized
// trace mentions the given thread lane id.
func TraceContainsLane(trace string, lane int) bool {
	return strings.Contains(trace, fmt.Sprintf(`"tid": %d`, lane))
}
