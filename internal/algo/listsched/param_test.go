package listsched_test

import (
	"context"
	"testing"

	"dagsched/internal/algo"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

// pairings maps each canonical baseline to the grid point that must
// reproduce it bit for bit.
func pairings() []struct {
	base  algo.Algorithm
	param listsched.Param
} {
	return []struct {
		base  algo.Algorithm
		param listsched.Param
	}{
		{listsched.HEFT{}, listsched.HEFTParam()},
		{listsched.CPOP{}, listsched.CPOPParam()},
		{listsched.HLFET{}, listsched.HLFETParam()},
		{listsched.ETF{}, listsched.ETFParam()},
	}
}

// TestParamReproducesBaselinesOnGoldens proves the parameterized
// scheduler is an exact factoring: at the HEFT/CPOP/HLFET/ETF component
// settings it produces placement-digest-identical schedules to the
// dedicated implementations on every golden instance — and therefore
// matches the committed goldens themselves.
func TestParamReproducesBaselinesOnGoldens(t *testing.T) {
	golden, err := testfix.Golden()
	if err != nil {
		t.Fatal(err)
	}
	for _, ni := range testfix.GoldenInstances() {
		for _, pair := range pairings() {
			want, err := pair.base.Schedule(ni.In)
			if err != nil {
				t.Fatalf("%s on %s: %v", pair.base.Name(), ni.Name, err)
			}
			got, err := pair.param.Schedule(ni.In)
			if err != nil {
				t.Fatalf("%s on %s: %v", pair.param.Name(), ni.Name, err)
			}
			wantD, gotD := testfix.ScheduleDigest(want), testfix.ScheduleDigest(got)
			if wantD != gotD {
				t.Errorf("%s on %s: param digest differs from %s (makespans %v vs %v)",
					pair.param.Name(), ni.Name, pair.base.Name(), got.Makespan(), want.Makespan())
			}
			// And against the committed golden record directly, so the
			// equivalence is anchored to the frozen fixtures, not just to
			// the current baseline implementation.
			if rec, ok := golden[ni.Name][pair.base.Name()]; ok {
				if gotD != rec.Digest {
					t.Errorf("%s on %s: param digest drifted from committed %s golden",
						pair.param.Name(), ni.Name, pair.base.Name())
				}
				if got.Makespan() != rec.Makespan {
					t.Errorf("%s on %s: param makespan %v, golden %v",
						pair.param.Name(), ni.Name, got.Makespan(), rec.Makespan)
				}
			}
		}
	}
}

// TestParamReproducesBaselinesOnBattery is the differential property
// test over a fresh random battery: same digests on instances the
// goldens never saw.
func TestParamReproducesBaselinesOnBattery(t *testing.T) {
	testfix.Battery(testfix.BatteryConfig{Trials: 25, MaxTasks: 45, Seed: 22001}, func(trial int, in *sched.Instance) {
		for _, pair := range pairings() {
			want, err := pair.base.Schedule(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, pair.base.Name(), err)
			}
			got, err := pair.param.Schedule(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, pair.param.Name(), err)
			}
			if testfix.ScheduleDigest(want) != testfix.ScheduleDigest(got) {
				t.Errorf("trial %d: %s digest differs from %s", trial, pair.param.Name(), pair.base.Name())
			}
		}
	})
}

// TestGridAllValidate runs every grid point over a small battery and
// requires valid schedules — the grid contains no broken compositions.
func TestGridAllValidate(t *testing.T) {
	grid := listsched.Grid()
	if len(grid) < 40 {
		t.Fatalf("grid has only %d points", len(grid))
	}
	seen := map[string]bool{}
	for _, pm := range grid {
		if seen[pm.String()] {
			t.Fatalf("duplicate grid point %s", pm)
		}
		seen[pm.String()] = true
	}
	for _, want := range []listsched.Param{listsched.HEFTParam(), listsched.CPOPParam(), listsched.HLFETParam(), listsched.ETFParam()} {
		if !seen[want.String()] {
			t.Errorf("grid is missing baseline point %s", want)
		}
	}
	testfix.Battery(testfix.BatteryConfig{Trials: 4, MaxTasks: 20, Seed: 22002}, func(trial int, in *sched.Instance) {
		for _, pm := range grid {
			s, err := pm.Schedule(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, pm, err)
			}
			if err := s.Validate(); err != nil {
				t.Errorf("trial %d %s: invalid schedule: %v", trial, pm, err)
			}
		}
	})
}

// TestParamParseRoundTrip pins the canonical naming: String and
// ParseParam are inverses over the whole grid, and malformed names
// error.
func TestParamParseRoundTrip(t *testing.T) {
	for _, pm := range listsched.Grid() {
		got, err := listsched.ParseParam(pm.String())
		if err != nil {
			t.Fatalf("parse %s: %v", pm, err)
		}
		if got != pm {
			t.Errorf("round trip %s -> %s", pm, got)
		}
	}
	for _, bad := range []string{
		"", "HEFT", "LS/u/static/eft/ins", "LS/x/static/eft/ins/nodup",
		"LS/u/never/eft/ins/nodup", "LS/u/static/xxx/ins/nodup",
		"LS/u/static/eft/maybe/nodup", "LS/u/static/eft/ins/maybe",
	} {
		if _, err := listsched.ParseParam(bad); err == nil {
			t.Errorf("ParseParam(%q) accepted", bad)
		}
	}
}

// TestParamContextCancel proves the grid scheduler aborts promptly on an
// already-canceled context, like every other CtxScheduler.
func TestParamContextCancel(t *testing.T) {
	in := testfix.Topcuoglu()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, pm := range []listsched.Param{HEFTlike(), listsched.CPOPParam()} {
		if _, err := algo.ScheduleContext(ctx, pm, in); err == nil {
			t.Errorf("%s: canceled context not reported", pm)
		}
	}
}

// HEFTlike returns a HEFT-setting Param with a display name, also
// covering the DisplayName override.
func HEFTlike() listsched.Param {
	pm := listsched.HEFTParam()
	pm.DisplayName = "HEFT*"
	return pm
}
