package service

import "sync"

// flight is one in-progress computation of a cache key. The leader that
// registered it fills resp/err and closes done; every other request for
// the same key parks on done instead of queueing a duplicate job.
type flight struct {
	done chan struct{}
	resp *ScheduleResponse
	err  error
}

// flightGroup coalesces concurrent identical scheduling requests
// (same canonical cache key) into a single computation — the in-flight
// complement of the LRU result cache, which only helps once a run has
// finished. Without it, a burst of identical requests all miss the
// cache together and burn a worker each on the same answer.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join registers the caller on key's flight. The first caller becomes
// the leader (leader == true) and must call finish exactly once;
// followers receive the existing flight to wait on.
func (g *flightGroup) join(key string) (leader bool, f *flight) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return false, f
	}
	f = &flight{done: make(chan struct{})}
	g.m[key] = f
	return true, f
}

// finish publishes the leader's result and wakes the followers. The
// flight is removed before done closes, so a request arriving after
// finish starts a fresh computation (or hits the cache the leader just
// filled) rather than reading a stale flight.
func (g *flightGroup) finish(key string, f *flight, resp *ScheduleResponse, err error) {
	g.mu.Lock()
	if g.m[key] == f {
		delete(g.m, key)
	}
	g.mu.Unlock()
	f.resp, f.err = resp, err
	close(f.done)
}
