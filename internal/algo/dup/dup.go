// Package dup implements the duplication-based scheduling heuristics DSH
// (Kruatrachue & Lewis, 1988) and BTDH (bottom-up top-down duplication,
// the earlier heuristic of this paper's own authors): list schedulers that
// copy critical parents into idle slots so a task can start earlier at the
// cost of redundant computation.
package dup

import (
	"math"

	"dagsched/internal/algo"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// maxDups bounds duplicate copies accepted per task placement; each
// accepted duplicate makes one more parent local, so the bound is only a
// safety net against pathological graphs.
const maxDups = 64

// DSH is the Duplication Scheduling Heuristic: ready tasks in decreasing
// static level; for every candidate processor the start time is improved
// by greedily duplicating the critical parent into the idle slot in front
// of the task, keeping a duplicate only when the start time strictly
// improves; the processor with the smallest resulting finish time wins.
type DSH struct{}

// Name implements algo.Algorithm.
func (DSH) Name() string { return "DSH" }

// Schedule implements algo.Algorithm.
func (DSH) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	return duplicationSchedule(in, "DSH", func(tx *sched.Txn, t dag.TaskID, p int) algo.DupResult {
		return algo.TryDuplication(tx, t, p, maxDups)
	})
}

// BTDH extends DSH: it keeps duplicating remote parents even when an
// individual duplication does not immediately improve the start time, and
// finally keeps the best configuration encountered. This recovers cases
// where only a *combination* of duplicated parents pays off. Duplication
// is limited to direct parents, matching DSH's search space.
type BTDH struct{}

// Name implements algo.Algorithm.
func (BTDH) Name() string { return "BTDH" }

// Schedule implements algo.Algorithm.
func (BTDH) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	return duplicationSchedule(in, "BTDH", tryDuplicationBTDH)
}

// duplicationSchedule is the shared driver: static-level ready list, one
// speculative transaction per candidate processor (evaluated concurrently
// on large instances — transactions make the trials independent), commit
// of the winning transaction.
func duplicationSchedule(in *sched.Instance, name string, try func(*sched.Txn, dag.TaskID, int) algo.DupResult) (*sched.Schedule, error) {
	sl := sched.StaticLevel(in)
	pl := sched.NewPlan(in)
	rl := algo.NewReadyList(in.G)
	group := algo.NewTrialGroup(in.P(), in.N())
	defer group.Close()
	txs := make([]*sched.Txn, in.P())
	results := make([]algo.DupResult, in.P())
	for !rl.Empty() {
		var pick dag.TaskID = -1
		for _, r := range rl.Ready() {
			if pick == -1 || sl[r] > sl[pick] {
				pick = r
			}
		}
		group.Run(in.P(), func(p int) {
			tx := txs[p]
			if tx == nil {
				tx = pl.Begin()
				txs[p] = tx
			} else {
				tx.Reset()
			}
			results[p] = try(tx, pick, p)
		})
		// Winner selection stays sequential in ascending processor order,
		// preserving the tie-break of the clone-based path.
		bestFinish := math.Inf(1)
		bestProc := -1
		for p := 0; p < in.P(); p++ {
			if results[p].Finish < bestFinish {
				bestFinish, bestProc = results[p].Finish, p
			}
		}
		txs[bestProc].Commit()
		pl.Place(pick, bestProc, results[bestProc].Start)
		rl.Complete(pick)
	}
	return pl.Finalize(name), nil
}

// tryDuplicationBTDH duplicates the chain of remote critical parents
// unconditionally, remembering the journal position of the best start
// time seen, and rewinds the transaction to it. Termination: every
// accepted duplicate makes one more parent local on p and local parents
// are never candidates again.
func tryDuplicationBTDH(tx *sched.Txn, t dag.TaskID, p int) algo.DupResult {
	in := tx.Instance()
	dur := in.Cost(t, p)

	start := tx.FindSlot(p, tx.DataReady(t, p), dur, true)
	best := algo.DupResult{Start: start, Finish: start + dur}
	bestMark := tx.Mark()

	dups := 0
	for dups < maxDups {
		parent, arrival := algo.CriticalParent(tx, t, p)
		if parent == -1 {
			break
		}
		// Unlike DSH, duplicate even when the parent is not strictly
		// binding (arrival < start): the chain may pay off later. Skip
		// only when data already arrives at time zero.
		if arrival <= 0 {
			break
		}
		pready := tx.DataReady(parent, p)
		pslot := tx.FindSlot(p, pready, in.Cost(parent, p), true)
		tx.PlaceDup(parent, p, pslot)
		dups++
		start = tx.FindSlot(p, tx.DataReady(t, p), dur, true)
		if start < best.Start {
			best = algo.DupResult{Start: start, Finish: start + dur, Dups: dups}
			bestMark = tx.Mark()
		}
	}
	tx.Undo(bestMark)
	return best
}
