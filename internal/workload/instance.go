// Package workload generates the task graphs and problem instances of the
// evaluation: the Topcuoglu-parameterized random DAGs and the canonical
// application graphs of the static-scheduling literature (Gaussian
// elimination, FFT, Laplace), plus structured graphs (fork-join, trees,
// pipelines) and tiled dense solvers (Cholesky, LU) as realistic
// extensions.
//
// Generators return plain task graphs with nominal weights and data
// volumes; MakeInstance turns a graph into a concrete problem by scaling
// communication to a target CCR and drawing a heterogeneous cost matrix.
package workload

import (
	"fmt"
	"math/rand"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
)

// WithCCR returns a copy of g whose edge data volumes are rescaled so that
// the mean edge communication cost on sys equals ccr times the mean
// nominal task weight. With zero-latency links the realized CCR of the
// resulting instance matches exactly; with startup latency the scaling
// accounts for it, clamping at zero data when latency alone already
// exceeds the target.
func WithCCR(g *dag.Graph, sys *platform.System, ccr float64) (*dag.Graph, error) {
	if ccr < 0 {
		return nil, fmt.Errorf("workload: negative CCR %g", ccr)
	}
	edges := g.Edges()
	if len(edges) == 0 || sys.Len() < 2 {
		return g, nil
	}
	meanW := g.TotalWeight() / float64(g.Len())
	var meanData float64
	for _, e := range edges {
		meanData += e.Data
	}
	meanData /= float64(len(edges))
	// Mean comm cost of one data unit and of zero data (pure latency).
	unitCost := sys.MeanCommCost(1) - sys.MeanCommCost(0)
	latency := sys.MeanCommCost(0)
	target := ccr * meanW
	var factor float64
	switch {
	case meanData == 0 || unitCost == 0:
		factor = 0
	case target <= latency:
		factor = 0
	default:
		factor = (target - latency) / (unitCost * meanData)
	}
	b := dag.NewBuilder(g.Name())
	for _, t := range g.Tasks() {
		b.AddTask(t.Name, t.Weight)
	}
	for _, e := range edges {
		b.AddEdge(e.From, e.To, e.Data*factor)
	}
	return b.Build()
}

// HetConfig describes how MakeInstance turns a graph into an instance.
type HetConfig struct {
	// Procs is the processor count (required).
	Procs int
	// CCR is the target communication-to-computation ratio (0 keeps the
	// graph's natural data volumes unscaled).
	CCR float64
	// Beta is the cost-matrix heterogeneity of sched.Unrelated in [0, 2);
	// 0 yields a homogeneous cost matrix.
	Beta float64
	// Latency is the per-message startup cost on every link.
	Latency float64
	// LinkSpread makes the network heterogeneous: each directed link's
	// time-per-unit is drawn uniformly from [1−s/2, 1+s/2] (mean 1). Must
	// lie in [0, 2); 0 keeps all links identical.
	LinkSpread float64
	// StartupSpread does the same for per-link startup latencies, drawn
	// uniformly from Latency·[1−s/2, 1+s/2]. Must lie in [0, 2); 0 keeps
	// the uniform Latency.
	StartupSpread float64
}

// MakeInstance builds a ready-to-schedule instance: a unit-speed fully
// connected system with cfg.Procs processors, edge data scaled to cfg.CCR
// (when non-zero) and an unrelated cost matrix drawn with cfg.Beta.
func MakeInstance(g *dag.Graph, cfg HetConfig, rng *rand.Rand) (*sched.Instance, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("workload: invalid processor count %d", cfg.Procs)
	}
	// platform.Generate draws nothing for zero spreads and draws link
	// matrices in the same row-major order the previous inline loop
	// used, so pre-existing configs reproduce their old systems (and
	// RNG stream) bit for bit.
	sys, err := platform.Generate(platform.GenConfig{
		Procs:         cfg.Procs,
		Latency:       cfg.Latency,
		TimePerUnit:   1,
		StartupSpread: cfg.StartupSpread,
		LinkSpread:    cfg.LinkSpread,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	scaled := g
	if cfg.CCR > 0 {
		var err error
		scaled, err = WithCCR(g, sys, cfg.CCR)
		if err != nil {
			return nil, err
		}
	}
	return sched.Unrelated(scaled, sys, cfg.Beta, rng)
}
